package audit

import (
	"encoding/json"
	"net/http"
)

// snapshot is the /debug/audit JSON document.
type snapshot struct {
	Stats  Stats       `json:"stats"`
	Recent []violation `json:"recent_violations"`
	// DeliveryGapNs summarizes the merged inter-delivery gap
	// distribution across every participant.
	DeliveryGapNs gapSummary `json:"delivery_gap_ns"`
	Participants  []int32    `json:"participants"`
}

type violation struct {
	Kind   string `json:"kind"`
	At     int64  `json:"at"`
	MP     int32  `json:"mp"`
	Detail string `json:"detail"`
}

type gapSummary struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	P50   int64 `json:"p50"`
	P99   int64 `json:"p99"`
	Max   int64 `json:"max"`
}

// Handler serves the auditor's state as JSON — mount it at
// /debug/audit. All auditor reads happen through the public snapshot
// accessors, so no user code runs under the auditor's lock while a
// response is being encoded.
func Handler(a *Auditor) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		doc := snapshot{Stats: a.Stats(), Recent: []violation{}}
		for _, v := range a.Recent() {
			doc.Recent = append(doc.Recent, violation{
				Kind: v.Kind.String(), At: int64(v.At), MP: int32(v.MP), Detail: v.String(),
			})
		}
		gaps, mps := a.GapSnapshot()
		doc.DeliveryGapNs = gapSummary{
			Count: gaps.Count, Sum: gaps.Sum,
			P50: gaps.Quantile(0.50), P99: gaps.Quantile(0.99), Max: gaps.Max(),
		}
		doc.Participants = make([]int32, 0, len(mps))
		for _, mp := range mps {
			doc.Participants = append(doc.Participants, int32(mp))
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc) //dbo:vet-ignore errdrop best-effort debug dump; a vanished client is not actionable
	})
}
