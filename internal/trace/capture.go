package trace

import (
	"sync"

	"dbo/internal/sim"
)

// Capture accumulates irregularly-timed RTT samples — TWAMP-light
// probe measurements from a live run — and regularizes them into a
// replayable Trace. The ROADMAP item 5 follow-on: measured
// distributions feed back into the simulator on the same footing as
// the synthetic generators.
//
// Samples must carry the observer's own monotonic clock; Capture never
// reads one. Safe for concurrent use.
type Capture struct {
	mu      sync.Mutex
	step    sim.Time
	samples []sample
}

type sample struct {
	at  sim.Time
	rtt sim.Time
}

// NewCapture returns an empty capture that will regularize onto a grid
// of the given step (panics if step <= 0).
func NewCapture(step sim.Time) *Capture {
	if step <= 0 {
		panic("trace: capture step must be positive")
	}
	return &Capture{step: step}
}

// Add records one measurement taken at time at (observer clock).
// Negative RTTs (invalid probe replies) are ignored. Samples may
// arrive out of order; Trace sorts by time.
func (c *Capture) Add(at, rtt sim.Time) {
	if rtt < 0 {
		return
	}
	c.mu.Lock()
	c.samples = append(c.samples, sample{at: at, rtt: rtt})
	c.mu.Unlock()
}

// Len reports samples recorded so far.
func (c *Capture) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.samples)
}

// Trace regularizes the samples onto the capture's step grid, from the
// first sample to the last: each grid cell takes the most recent
// sample at or before its start (last-observation-carried-forward —
// RTT processes are step-like between measurements, so holding the
// last reading is the honest interpolation). Returns nil when no
// samples were recorded. The capture itself is unchanged.
func (c *Capture) Trace() *Trace {
	c.mu.Lock()
	samples := make([]sample, len(c.samples))
	copy(samples, c.samples)
	step := c.step
	c.mu.Unlock()
	if len(samples) == 0 {
		return nil
	}
	// Stable sort by time; insertion sort is fine for the mostly-sorted
	// series a periodic prober produces.
	for i := 1; i < len(samples); i++ {
		for j := i; j > 0 && samples[j].at < samples[j-1].at; j-- {
			samples[j], samples[j-1] = samples[j-1], samples[j]
		}
	}
	first, last := samples[0].at, samples[len(samples)-1].at
	n := int((last-first)/step) + 1
	out := &Trace{Step: step, RTT: make([]sim.Time, n)}
	si := 0
	cur := samples[0].rtt
	for i := 0; i < n; i++ {
		cellStart := first + sim.Time(i)*step
		for si < len(samples) && samples[si].at <= cellStart {
			cur = samples[si].rtt
			si++
		}
		out.RTT[i] = cur
	}
	return out
}
