// Package trace models cloud network round-trip-time traces.
//
// The paper drives its simulations with a 15-minute RTT trace collected
// between the CES and a release buffer on Azure (Figure 11): a stable,
// temporally-correlated base latency punctuated by rare spikes up to an
// order of magnitude above the mean. We do not have that proprietary
// trace, so this package synthesizes traces with the same three
// properties the evaluation depends on:
//
//  1. static latency differences across participants (each participant
//     samples a different random slice of the trace, as in §6.4),
//  2. high short-term temporal correlation (AR(1) base process), and
//  3. unpredictable, effectively unbounded spikes (Poisson arrivals with
//     Pareto magnitudes and exponential decay).
//
// Traces are deterministic in their seed and serializable as CSV.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"slices"
	"strconv"
	"strings"

	"dbo/internal/sim"
)

// Trace is a regularly sampled RTT series. Sample i is the round trip
// time over [i·Step, (i+1)·Step).
type Trace struct {
	Step sim.Time   // sampling period
	RTT  []sim.Time // round trip times, one per step
}

// Duration reports the total time covered by the trace.
func (t *Trace) Duration() sim.Time { return sim.Time(len(t.RTT)) * t.Step }

// At returns the RTT in effect at virtual time v. Times beyond the end
// of the trace wrap around, so a trace can drive arbitrarily long runs.
func (t *Trace) At(v sim.Time) sim.Time {
	if len(t.RTT) == 0 {
		panic("trace: empty trace")
	}
	if v < 0 {
		v = -v
	}
	i := int(v/t.Step) % len(t.RTT)
	return t.RTT[i]
}

// OneWayAt returns half the RTT at v — the paper computes one-way
// latencies "by taking random slices of the network trace and halving
// the RTTs" (§6.4).
func (t *Trace) OneWayAt(v sim.Time) sim.Time { return t.At(v) / 2 }

// Slice returns a view of the trace rotated to begin at the given sample
// offset (wrapping). Different participants use different offsets so
// their latency processes are decorrelated while sharing the same
// statistical character.
func (t *Trace) Slice(offset int) *Trace {
	n := len(t.RTT)
	if n == 0 {
		panic("trace: empty trace")
	}
	offset = ((offset % n) + n) % n
	rtt := make([]sim.Time, n)
	copy(rtt, t.RTT[offset:])
	copy(rtt[n-offset:], t.RTT[:offset])
	return &Trace{Step: t.Step, RTT: rtt}
}

// RandomSlice returns a Slice at an offset drawn from rng.
func (t *Trace) RandomSlice(rng *rand.Rand) *Trace {
	return t.Slice(rng.IntN(len(t.RTT)))
}

// Scale returns a copy of the trace with every sample multiplied by f.
// Useful to give participants static latency differences on top of
// shared dynamics.
func (t *Trace) Scale(f float64) *Trace {
	rtt := make([]sim.Time, len(t.RTT))
	for i, v := range t.RTT {
		rtt[i] = sim.Time(math.Round(float64(v) * f))
	}
	return &Trace{Step: t.Step, RTT: rtt}
}

// Shift returns a copy with d added to every sample (clamped at zero).
func (t *Trace) Shift(d sim.Time) *Trace {
	rtt := make([]sim.Time, len(t.RTT))
	for i, v := range t.RTT {
		nv := v + d
		if nv < 0 {
			nv = 0
		}
		rtt[i] = nv
	}
	return &Trace{Step: t.Step, RTT: rtt}
}

// Stats summarizes a trace.
type Stats struct {
	Mean, P50, P99, P999, Max sim.Time
}

// Summarize computes order statistics over the trace samples.
func (t *Trace) Summarize() Stats {
	if len(t.RTT) == 0 {
		return Stats{}
	}
	sorted := make([]sim.Time, len(t.RTT))
	copy(sorted, t.RTT)
	slices.Sort(sorted)
	var sum sim.Time
	for _, v := range sorted {
		sum += v
	}
	pick := func(q float64) sim.Time {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return Stats{
		Mean: sum / sim.Time(len(sorted)),
		P50:  pick(0.50),
		P99:  pick(0.99),
		P999: pick(0.999),
		Max:  sorted[len(sorted)-1],
	}
}

// Generator synthesizes a Trace. Zero fields take sensible defaults via
// the preset constructors Cloud and Lab.
type Generator struct {
	Seed       uint64
	Step       sim.Time // sampling period (default 10µs)
	Length     sim.Time // total duration (default 2s)
	BaseRTT    sim.Time // mean of the base process
	Jitter     sim.Time // std-dev of per-step AR(1) innovation
	Corr       float64  // AR(1) coefficient in [0,1); higher = smoother
	MinRTT     sim.Time // hard floor (propagation + serialization)
	SpikePer   sim.Time // mean inter-arrival of spike episodes (0 = none)
	SpikeMin   sim.Time // minimum spike magnitude (Pareto scale)
	SpikeTail  float64  // Pareto tail index α (smaller = heavier tail)
	SpikeDecay sim.Time // exponential decay constant of a spike
}

// Generate produces the deterministic trace for the generator's seed.
func (g Generator) Generate() *Trace {
	step := g.Step
	if step <= 0 {
		step = 10 * sim.Microsecond
	}
	length := g.Length
	if length <= 0 {
		length = 2 * sim.Second
	}
	n := int(length / step)
	if n <= 0 {
		n = 1
	}
	rng := rand.New(rand.NewPCG(g.Seed, g.Seed^0xabcdef1234567890))
	rtt := make([]sim.Time, n)

	corr := g.Corr
	if corr <= 0 || corr >= 1 {
		corr = 0.97
	}
	decay := float64(g.SpikeDecay)
	if decay <= 0 {
		decay = float64(5 * sim.Millisecond)
	}
	tail := g.SpikeTail
	if tail <= 0 {
		tail = 1.5
	}
	base := float64(g.BaseRTT)
	jitter := float64(g.Jitter)
	minRTT := g.MinRTT
	if minRTT <= 0 {
		minRTT = g.BaseRTT / 2
	}

	// Per-step spike probability from mean inter-arrival.
	spikeP := 0.0
	if g.SpikePer > 0 {
		spikeP = float64(step) / float64(g.SpikePer)
	}
	decayMul := math.Exp(-float64(step) / decay)

	ar := 0.0
	env := 0.0
	for i := range rtt {
		ar = corr*ar + rng.NormFloat64()*jitter*math.Sqrt(1-corr*corr)
		if spikeP > 0 && rng.Float64() < spikeP {
			// Pareto(scale=SpikeMin, α=tail) magnitude.
			u := rng.Float64()
			if u < 1e-12 {
				u = 1e-12
			}
			env += float64(g.SpikeMin) * math.Pow(u, -1/tail)
		}
		env *= decayMul
		v := sim.Time(base + ar + env)
		if v < minRTT {
			v = minRTT
		}
		rtt[i] = v
	}
	return &Trace{Step: step, RTT: rtt}
}

// Cloud returns a generator shaped like the paper's Azure trace
// (Figure 11): ~55µs base RTT with spikes reaching several hundred µs.
func Cloud(seed uint64) Generator {
	return Generator{
		Seed:    seed,
		Step:    10 * sim.Microsecond,
		Length:  2 * sim.Second,
		BaseRTT: 55 * sim.Microsecond,
		Jitter:  3 * sim.Microsecond,
		Corr:    0.98,
		MinRTT:  40 * sim.Microsecond,
		// Spikes are frequent but near-vertical, as in the paper's
		// Figure 11 trace (several needle-like excursions per two
		// seconds): each lasts only a few samples, so per participant
		// only ≈0.02% of time is spike-affected and even the max over
		// ten participants keeps a clean p99 while p999 feels the tail
		// (Table 3 shape: p999 just above p99, p9999 far out).
		SpikePer:   300 * sim.Millisecond,
		SpikeMin:   100 * sim.Microsecond,
		SpikeTail:  1.6,
		SpikeDecay: 20 * sim.Microsecond,
	}
}

// Lab returns a generator shaped like the paper's bare-metal testbed
// (Table 2): ~9.5µs RTT through a single 100GbE switch, light jitter,
// no multi-tenant spikes.
func Lab(seed uint64) Generator {
	return Generator{
		Seed:       seed,
		Step:       10 * sim.Microsecond,
		Length:     2 * sim.Second,
		BaseRTT:    9500, // 9.5µs in ns
		Jitter:     1200,
		Corr:       0.9,
		MinRTT:     8 * sim.Microsecond,
		SpikePer:   400 * sim.Millisecond,
		SpikeMin:   6 * sim.Microsecond,
		SpikeTail:  2.5,
		SpikeDecay: 500 * sim.Microsecond,
	}
}

// WriteCSV serializes the trace as "time_us,rtt_us" rows.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "time_us,rtt_us\n"); err != nil {
		return err
	}
	for i, v := range t.RTT {
		at := sim.Time(i) * t.Step
		if _, err := fmt.Fprintf(bw, "%.3f,%.3f\n", at.Micros(), v.Micros()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV. The sampling step is
// inferred from the first two rows (a single-row trace gets step 1µs).
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	var times, rtts []float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || (line == 1 && strings.HasPrefix(text, "time_us")) {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("trace: line %d: want 2 fields, got %d", line, len(parts))
		}
		tv, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		rv, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		times = append(times, tv)
		rtts = append(rtts, rv)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rtts) == 0 {
		return nil, fmt.Errorf("trace: no samples")
	}
	step := sim.Microsecond
	if len(times) > 1 {
		step = sim.Time((times[1] - times[0]) * float64(sim.Microsecond))
		if step <= 0 {
			return nil, fmt.Errorf("trace: non-increasing timestamps")
		}
	}
	out := &Trace{Step: step, RTT: make([]sim.Time, len(rtts))}
	for i, v := range rtts {
		out.RTT[i] = sim.Time(v * float64(sim.Microsecond))
	}
	return out, nil
}
