package trace

import (
	"bytes"
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	"dbo/internal/sim"
)

func TestGenerateDeterministic(t *testing.T) {
	t.Parallel()
	a := Cloud(7).Generate()
	b := Cloud(7).Generate()
	if len(a.RTT) != len(b.RTT) {
		t.Fatal("lengths differ for identical seed")
	}
	for i := range a.RTT {
		if a.RTT[i] != b.RTT[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a.RTT[i], b.RTT[i])
		}
	}
	c := Cloud(8).Generate()
	same := true
	for i := range a.RTT {
		if a.RTT[i] != c.RTT[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical trace")
	}
}

func TestCloudTraceShape(t *testing.T) {
	t.Parallel()
	tr := Cloud(1).Generate()
	s := tr.Summarize()
	// Base RTT around 55µs: mean must sit near it (spikes pull up a bit).
	if s.Mean < 45*sim.Microsecond || s.Mean > 90*sim.Microsecond {
		t.Errorf("cloud mean RTT = %v, want ~55µs", s.Mean)
	}
	// Spikes: max should be several times the median (paper shows ~600µs
	// spikes over a ~55µs base).
	if s.Max < 3*s.P50 {
		t.Errorf("cloud max %v not spiky enough vs p50 %v", s.Max, s.P50)
	}
	// No sample below the floor.
	for i, v := range tr.RTT {
		if v < 40*sim.Microsecond {
			t.Fatalf("sample %d = %v below MinRTT", i, v)
		}
	}
}

func TestLabTraceShape(t *testing.T) {
	t.Parallel()
	s := Lab(1).Generate().Summarize()
	if s.Mean < 8*sim.Microsecond || s.Mean > 14*sim.Microsecond {
		t.Errorf("lab mean RTT = %v, want ~9.5µs", s.Mean)
	}
	if s.Max > 120*sim.Microsecond {
		t.Errorf("lab max RTT = %v, implausibly large for a single switch", s.Max)
	}
}

func TestTemporalCorrelation(t *testing.T) {
	t.Parallel()
	// The paper's key observation (§4.1.1 remark, §6.3.2): latency has
	// high temporal correlation over short periods. Verify lag-1
	// autocorrelation of the generated cloud trace is high.
	tr := Cloud(3).Generate()
	n := len(tr.RTT)
	var mean float64
	for _, v := range tr.RTT {
		mean += float64(v)
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n-1; i++ {
		num += (float64(tr.RTT[i]) - mean) * (float64(tr.RTT[i+1]) - mean)
	}
	for i := 0; i < n; i++ {
		d := float64(tr.RTT[i]) - mean
		den += d * d
	}
	ac := num / den
	// The AR(1) base is highly correlated; needle spikes knock a little
	// off the raw lag-1 statistic.
	if ac < 0.85 {
		t.Errorf("lag-1 autocorrelation = %.3f, want ≥ 0.85", ac)
	}
}

func TestAtWrapsAround(t *testing.T) {
	t.Parallel()
	tr := &Trace{Step: 10, RTT: []sim.Time{100, 200, 300}}
	cases := []struct {
		at   sim.Time
		want sim.Time
	}{
		{0, 100}, {9, 100}, {10, 200}, {25, 300}, {30, 100}, {35, 100}, {45, 200},
	}
	for _, c := range cases {
		if got := tr.At(c.at); got != c.want {
			t.Errorf("At(%d) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestOneWayHalvesRTT(t *testing.T) {
	t.Parallel()
	tr := &Trace{Step: 10, RTT: []sim.Time{100}}
	if got := tr.OneWayAt(0); got != 50 {
		t.Errorf("OneWayAt = %v, want 50", got)
	}
}

func TestSliceRotates(t *testing.T) {
	t.Parallel()
	tr := &Trace{Step: 1, RTT: []sim.Time{1, 2, 3, 4}}
	s := tr.Slice(2)
	want := []sim.Time{3, 4, 1, 2}
	for i := range want {
		if s.RTT[i] != want[i] {
			t.Fatalf("Slice(2) = %v, want %v", s.RTT, want)
		}
	}
	// Negative and oversized offsets normalize.
	if got := tr.Slice(-1).RTT[0]; got != 4 {
		t.Errorf("Slice(-1)[0] = %v, want 4", got)
	}
	if got := tr.Slice(6).RTT[0]; got != 3 {
		t.Errorf("Slice(6)[0] = %v, want 3", got)
	}
}

func TestSliceDoesNotAliasOriginal(t *testing.T) {
	t.Parallel()
	tr := &Trace{Step: 1, RTT: []sim.Time{1, 2, 3}}
	s := tr.Slice(1)
	s.RTT[0] = 999
	if tr.RTT[1] == 999 {
		t.Fatal("Slice must copy, not alias")
	}
}

func TestRandomSliceDeterministic(t *testing.T) {
	t.Parallel()
	tr := Cloud(1).Generate()
	r1 := rand.New(rand.NewPCG(5, 5))
	r2 := rand.New(rand.NewPCG(5, 5))
	a := tr.RandomSlice(r1)
	b := tr.RandomSlice(r2)
	if a.RTT[0] != b.RTT[0] {
		t.Fatal("RandomSlice with equal rng state must match")
	}
}

func TestScaleAndShift(t *testing.T) {
	t.Parallel()
	tr := &Trace{Step: 1, RTT: []sim.Time{100, 200}}
	sc := tr.Scale(1.5)
	if sc.RTT[0] != 150 || sc.RTT[1] != 300 {
		t.Errorf("Scale(1.5) = %v", sc.RTT)
	}
	sh := tr.Shift(-150)
	if sh.RTT[0] != 0 || sh.RTT[1] != 50 {
		t.Errorf("Shift(-150) = %v, want [0 50]", sh.RTT)
	}
}

func TestSummarizeOrderStats(t *testing.T) {
	t.Parallel()
	rtt := make([]sim.Time, 1000)
	for i := range rtt {
		rtt[i] = sim.Time(i + 1)
	}
	s := (&Trace{Step: 1, RTT: rtt}).Summarize()
	if s.P50 < 495 || s.P50 > 505 {
		t.Errorf("P50 = %v", s.P50)
	}
	if s.P99 < 985 || s.P99 > 995 {
		t.Errorf("P99 = %v", s.P99)
	}
	if s.Max != 1000 {
		t.Errorf("Max = %v", s.Max)
	}
	if s.Mean != 500 {
		t.Errorf("Mean = %v, want 500 (integer division of 500.5)", s.Mean)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	t.Parallel()
	s := (&Trace{}).Summarize()
	if s.Max != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v, want zeros", s)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	t.Parallel()
	tr := Lab(2).Generate()
	tr.RTT = tr.RTT[:500]
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Step != tr.Step {
		t.Fatalf("step = %v, want %v", back.Step, tr.Step)
	}
	if len(back.RTT) != len(tr.RTT) {
		t.Fatalf("len = %d, want %d", len(back.RTT), len(tr.RTT))
	}
	for i := range tr.RTT {
		// CSV stores µs with ns precision; allow 1ns rounding.
		diff := back.RTT[i] - tr.RTT[i]
		if diff < -1 || diff > 1 {
			t.Fatalf("sample %d: %v vs %v", i, back.RTT[i], tr.RTT[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	t.Parallel()
	cases := map[string]string{
		"empty":        "",
		"header only":  "time_us,rtt_us\n",
		"bad fields":   "time_us,rtt_us\n1,2,3\n",
		"bad number":   "time_us,rtt_us\nx,2\n",
		"bad rtt":      "time_us,rtt_us\n1,x\n",
		"non-monotone": "time_us,rtt_us\n5,1\n5,2\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadCSVSingleRow(t *testing.T) {
	t.Parallel()
	tr, err := ReadCSV(strings.NewReader("time_us,rtt_us\n0,42\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Step != sim.Microsecond || tr.RTT[0] != 42*sim.Microsecond {
		t.Fatalf("got step %v rtt %v", tr.Step, tr.RTT[0])
	}
}

func TestGeneratorDefaults(t *testing.T) {
	t.Parallel()
	tr := Generator{Seed: 1, BaseRTT: 50 * sim.Microsecond}.Generate()
	if tr.Step != 10*sim.Microsecond {
		t.Errorf("default step = %v", tr.Step)
	}
	if tr.Duration() != 2*sim.Second {
		t.Errorf("default duration = %v", tr.Duration())
	}
}

func TestEmptyTracePanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("At on empty trace should panic")
		}
	}()
	(&Trace{Step: 1}).At(0)
}

// Property: all generated samples respect the floor and are finite.
func TestPropertySamplesBounded(t *testing.T) {
	t.Parallel()
	f := func(seed uint64) bool {
		g := Cloud(seed)
		g.Length = 50 * sim.Millisecond
		tr := g.Generate()
		for _, v := range tr.RTT {
			if v < g.MinRTT || v > sim.Time(math.MaxInt64/2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Slice composed with its inverse restores the original.
func TestPropertySliceInverse(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, off int16) bool {
		g := Lab(seed)
		g.Length = 5 * sim.Millisecond
		tr := g.Generate()
		n := len(tr.RTT)
		o := int(off)
		back := tr.Slice(o).Slice(-o)
		for i := 0; i < n; i++ {
			if back.RTT[i] != tr.RTT[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
