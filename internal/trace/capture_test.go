package trace

import (
	"sync"
	"testing"

	"dbo/internal/sim"
)

func TestCaptureEmpty(t *testing.T) {
	c := NewCapture(100)
	if tr := c.Trace(); tr != nil {
		t.Fatalf("empty capture produced a trace: %+v", tr)
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d, want 0", c.Len())
	}
}

func TestCaptureStepValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCapture(0) did not panic")
		}
	}()
	NewCapture(0)
}

func TestCaptureLOCF(t *testing.T) {
	c := NewCapture(100)
	c.Add(1000, 50)
	c.Add(1250, 80) // lands mid-grid: cell 3 (starting 1300) carries it
	c.Add(1400, 60)
	tr := c.Trace()
	if tr == nil || tr.Step != 100 {
		t.Fatalf("trace = %+v", tr)
	}
	// Grid from first (1000) to last (1400): 5 cells. The 1250 sample
	// is held from the first cell at or after it (1300).
	want := []sim.Time{50, 50, 50, 80, 60}
	if len(tr.RTT) != len(want) {
		t.Fatalf("len = %d, want %d", len(tr.RTT), len(want))
	}
	for i, w := range want {
		if tr.RTT[i] != w {
			t.Fatalf("cell %d = %v, want %v (full: %v)", i, tr.RTT[i], w, tr.RTT)
		}
	}
}

func TestCaptureOutOfOrder(t *testing.T) {
	a, b := NewCapture(100), NewCapture(100)
	samples := [][2]sim.Time{{1000, 10}, {1100, 20}, {1200, 30}}
	for _, s := range samples {
		a.Add(s[0], s[1])
	}
	for i := len(samples) - 1; i >= 0; i-- {
		b.Add(samples[i][0], samples[i][1])
	}
	ta, tb := a.Trace(), b.Trace()
	if len(ta.RTT) != len(tb.RTT) {
		t.Fatalf("lengths differ: %d vs %d", len(ta.RTT), len(tb.RTT))
	}
	for i := range ta.RTT {
		if ta.RTT[i] != tb.RTT[i] {
			t.Fatalf("cell %d differs: %v vs %v", i, ta.RTT[i], tb.RTT[i])
		}
	}
}

func TestCaptureIgnoresInvalid(t *testing.T) {
	c := NewCapture(100)
	c.Add(1000, -1) // ProbeRTT's invalid marker
	if c.Len() != 0 {
		t.Fatal("negative RTT recorded")
	}
	c.Add(1000, 70)
	if c.Len() != 1 {
		t.Fatal("valid RTT dropped")
	}
}

func TestCaptureSingleSample(t *testing.T) {
	c := NewCapture(100)
	c.Add(5000, 42)
	tr := c.Trace()
	if len(tr.RTT) != 1 || tr.RTT[0] != 42 {
		t.Fatalf("trace = %+v, want one cell of 42", tr.RTT)
	}
	// A replayable trace: At wraps.
	if tr.At(123456) != 42 {
		t.Fatal("single-cell trace should replay 42 everywhere")
	}
}

func TestCaptureConcurrent(t *testing.T) {
	c := NewCapture(10)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Add(sim.Time(g*1000+i*10), sim.Time(50+i))
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 400 {
		t.Fatalf("len = %d, want 400", c.Len())
	}
	if tr := c.Trace(); tr == nil || len(tr.RTT) == 0 {
		t.Fatal("no trace from concurrent capture")
	}
}
