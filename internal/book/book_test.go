package book

import (
	"testing"

	"dbo/internal/feed"
	"dbo/internal/market"
	"dbo/internal/sim"
)

func bid(id market.PointID, price, qty int64) market.DataPoint {
	return market.DataPoint{ID: id, Symbol: 1, Price: price, Qty: qty, BidSide: true}
}

func ask(id market.PointID, price, qty int64) market.DataPoint {
	return market.DataPoint{ID: id, Symbol: 1, Price: price, Qty: qty}
}

func TestViewBuildsFromUpdates(t *testing.T) {
	t.Parallel()
	var v View
	if v.Valid() {
		t.Fatal("empty view valid")
	}
	v.Apply(bid(1, 99, 10), 100)
	if v.Valid() {
		t.Fatal("one-sided view valid")
	}
	v.Apply(ask(2, 101, 5), 200)
	if !v.Valid() {
		t.Fatal("two-sided view invalid")
	}
	if v.Mid2() != 200 || v.Spread() != 2 {
		t.Fatalf("mid2=%d spread=%d", v.Mid2(), v.Spread())
	}
	if v.BidUpdated != 100 || v.AskUpdated != 200 {
		t.Fatalf("timestamps %v/%v", v.BidUpdated, v.AskUpdated)
	}
	if v.Updates != 2 || v.LastPoint != 2 {
		t.Fatalf("updates=%d last=%d", v.Updates, v.LastPoint)
	}
}

func TestStaleAndDuplicatePointsIgnored(t *testing.T) {
	t.Parallel()
	var v View
	v.Apply(bid(5, 100, 1), 10)
	if v.Apply(bid(5, 200, 1), 20) {
		t.Fatal("duplicate applied")
	}
	if v.Apply(bid(3, 300, 1), 30) {
		t.Fatal("retransmitted stale point applied")
	}
	if v.Bid != 100 {
		t.Fatalf("view corrupted: bid %d", v.Bid)
	}
}

func TestImbalance(t *testing.T) {
	t.Parallel()
	var v View
	v.Apply(bid(1, 99, 30), 0)
	v.Apply(ask(2, 101, 10), 0)
	if got := v.Imbalance(); got != 0.5 {
		t.Fatalf("imbalance = %v", got)
	}
	empty := &View{}
	if empty.Imbalance() != 0 {
		t.Fatal("zero-size imbalance must be 0")
	}
}

func TestStaleness(t *testing.T) {
	t.Parallel()
	var v View
	v.Apply(bid(1, 99, 1), 100)
	v.Apply(ask(2, 101, 1), 500)
	if got := v.Staleness(600); got != 500 {
		t.Fatalf("staleness = %v (bid side last touched at 100)", got)
	}
}

func TestSymbolMixupPanics(t *testing.T) {
	t.Parallel()
	var v View
	v.Apply(bid(1, 99, 1), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	v.Apply(market.DataPoint{ID: 2, Symbol: 9, Price: 1, Qty: 1}, 0)
}

func TestBuilderRoutesSymbols(t *testing.T) {
	t.Parallel()
	b := NewBuilder()
	b.Apply(market.DataPoint{ID: 1, Symbol: 1, Price: 100, Qty: 1, BidSide: true}, 0)
	b.Apply(market.DataPoint{ID: 2, Symbol: 2, Price: 200, Qty: 1, BidSide: true}, 0)
	if b.Symbols() != 2 {
		t.Fatalf("symbols = %d", b.Symbols())
	}
	if b.View(1).Bid != 100 || b.View(2).Bid != 200 {
		t.Fatal("views mixed up")
	}
	if b.View(3) != nil {
		t.Fatal("unknown symbol should be nil")
	}
}

func TestViewTracksFeedGenerator(t *testing.T) {
	t.Parallel()
	// End-to-end with the feed substrate: applying every quote in order
	// reproduces the generator's current book exactly.
	g := feed.New(feed.Config{Seed: 9})
	var v View
	var lastQ feed.Quote
	for i := 0; i < 10000; i++ {
		q := g.Next()
		lastQ = q
		dp := market.DataPoint{
			ID: market.PointID(i + 1), Symbol: q.Symbol,
			BidSide: q.BidMoved,
		}
		if q.BidMoved {
			dp.Price, dp.Qty = q.Bid, q.BidSize
		} else {
			dp.Price, dp.Qty = q.Ask, q.AskSize
		}
		v.Apply(dp, sim.Time(i))
	}
	if v.Bid != lastQ.Bid || v.Ask != lastQ.Ask {
		t.Fatalf("view %d/%d vs feed %d/%d", v.Bid, v.Ask, lastQ.Bid, lastQ.Ask)
	}
	if v.Spread() < 1 {
		t.Fatal("crossed reconstructed book")
	}
}
