// Package book reconstructs a participant's view of the top of book
// from the delivered market data stream. Real HFT strategies trade off
// such a locally maintained view; the examples and live strategies use
// it instead of raw data points.
package book

import (
	"fmt"

	"dbo/internal/market"
	"dbo/internal/sim"
)

// View is one symbol's L1 state as seen by a participant.
type View struct {
	Symbol   uint32
	Bid, Ask int64
	BidSize  int64
	AskSize  int64

	LastPoint  market.PointID // newest data point applied
	BidUpdated sim.Time       // local delivery time of the bid side
	AskUpdated sim.Time
	Updates    int

	haveBid, haveAsk bool
}

// Apply folds one delivered data point into the view. Points must be
// applied in delivery order; stale points (id ≤ LastPoint) are ignored
// and reported, so retransmitted data never corrupts the view.
func (v *View) Apply(dp market.DataPoint, deliveredAt sim.Time) (applied bool) {
	if v.Updates > 0 && dp.ID <= v.LastPoint {
		return false
	}
	if v.Updates == 0 {
		v.Symbol = dp.Symbol
	} else if dp.Symbol != v.Symbol {
		panic(fmt.Sprintf("book: symbol mixup: %d into view of %d", dp.Symbol, v.Symbol))
	}
	if dp.BidSide {
		v.Bid, v.BidSize, v.BidUpdated, v.haveBid = dp.Price, dp.Qty, deliveredAt, true
	} else {
		v.Ask, v.AskSize, v.AskUpdated, v.haveAsk = dp.Price, dp.Qty, deliveredAt, true
	}
	v.LastPoint = dp.ID
	v.Updates++
	return true
}

// Valid reports whether both sides have been seen.
func (v *View) Valid() bool { return v.haveBid && v.haveAsk }

// Mid2 returns twice the midprice (integral). Only meaningful when Valid.
func (v *View) Mid2() int64 { return v.Bid + v.Ask }

// Spread returns ask − bid. Only meaningful when Valid.
func (v *View) Spread() int64 { return v.Ask - v.Bid }

// Imbalance returns (bidSize − askSize) / (bidSize + askSize) in
// [-1, 1] — a standard microstructure signal. Zero when sizes are zero.
func (v *View) Imbalance() float64 {
	total := v.BidSize + v.AskSize
	if total == 0 {
		return 0
	}
	return float64(v.BidSize-v.AskSize) / float64(total)
}

// Staleness returns how long ago (in local time) the older side was
// refreshed — large values mean one side of the quote is stale.
func (v *View) Staleness(now sim.Time) sim.Time {
	oldest := v.BidUpdated
	if v.AskUpdated < oldest {
		oldest = v.AskUpdated
	}
	return now - oldest
}

// Builder maintains Views for multiple symbols.
type Builder struct {
	views map[uint32]*View
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{views: make(map[uint32]*View)} }

// Apply routes a delivered point to its symbol's view.
func (b *Builder) Apply(dp market.DataPoint, deliveredAt sim.Time) *View {
	v, ok := b.views[dp.Symbol]
	if !ok {
		v = &View{}
		b.views[dp.Symbol] = v
	}
	v.Apply(dp, deliveredAt)
	return v
}

// View returns the view for a symbol (nil if never seen).
func (b *Builder) View(symbol uint32) *View { return b.views[symbol] }

// Symbols reports how many instruments have views.
func (b *Builder) Symbols() int { return len(b.views) }
