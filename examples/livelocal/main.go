// Livelocal: a complete live DBO deployment on loopback UDP — one
// exchange node and three market participant nodes, each with its own
// event loop and unsynchronized clock (§5's architecture, scaled to one
// machine).
//
// Participant response times rotate per data point so every race has a
// known rightful winner; the example verifies the matching engine saw
// exactly that order.
package main

import (
	"fmt"
	"os"
	"time"

	"dbo"
)

const (
	nMP   = 3
	ticks = 20
)

// rtOf rotates response times {3, 6, 9}ms across participants per point.
func rtOf(mp dbo.ParticipantID, point dbo.PointID) time.Duration {
	slot := (int(mp) - 1 + int(point)) % nMP
	return time.Duration(slot+1) * 3 * time.Millisecond
}

func main() {
	ex, err := dbo.NewExchange(dbo.ExchangeConfig{
		Listen:       "127.0.0.1:0",
		TickInterval: 30 * time.Millisecond,
		Ticks:        ticks,
		Delta:        12 * time.Millisecond,
		Kappa:        0.25,
		Tau:          time.Millisecond,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer ex.Stop()

	var addrs []dbo.ParticipantAddr
	var mps []*dbo.Participant
	for i := 1; i <= nMP; i++ {
		id := dbo.ParticipantID(i)
		mp, err := dbo.NewParticipant(dbo.ParticipantConfig{
			ID:     id,
			Listen: "127.0.0.1:0",
			CES:    ex.Addr().String(),
			Delta:  12 * time.Millisecond,
			Tau:    time.Millisecond,
			Strategy: func(dp dbo.DataPoint) (bool, time.Duration, dbo.Side, int64, int64) {
				side := dbo.Buy
				if (int(id)+int(dp.ID))%2 == 0 {
					side = dbo.Sell
				}
				return true, rtOf(id, dp.ID), side, dp.Price, 1
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer mp.Stop()
		mps = append(mps, mp)
		addrs = append(addrs, dbo.ParticipantAddr{ID: id, Addr: mp.Addr().String()})
		fmt.Printf("MP %d at %s\n", id, mp.Addr())
	}
	if err := ex.Start(addrs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("CES at %s, %d ticks\n\n", ex.Addr(), ticks)

	want := nMP * ticks
	deadline := time.Now().Add(15 * time.Second)
	for len(ex.Forwarded()) < want && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}

	// Score each race by the *measured* response times the trades carry
	// (the intended rtOf delays plus whatever the OS scheduler added —
	// that is the real ground truth DBO must order by).
	trades := ex.Forwarded()
	byRace := map[dbo.PointID][]*dbo.Trade{}
	pos := map[*dbo.Trade]int{}
	for i, t := range trades {
		byRace[t.Trigger] = append(byRace[t.Trigger], t)
		pos[t] = i
	}
	races, fairRaces := 0, 0
	for _, race := range byRace {
		if len(race) != nMP {
			continue
		}
		races++
		fair := true
		for a := 0; a < len(race); a++ {
			for b := a + 1; b < len(race); b++ {
				ta, tb := race[a], race[b]
				if ta.RT == tb.RT {
					continue
				}
				if (ta.RT < tb.RT) != (pos[ta] < pos[tb]) {
					fair = false
				}
			}
		}
		if fair {
			fairRaces++
		}
	}
	fmt.Printf("forwarded %d/%d trades, %d executions\n", len(trades), want, ex.Executions())
	fmt.Printf("races fully ordered by response time: %d/%d\n", fairRaces, races)
	fmt.Println("\n(Each node ran its own clock; no synchronization anywhere.)")
}
