// Speedrace: the paper's motivating scenario (Figure 5) made concrete.
//
// Two high-frequency traders compete for every opportunity. The "fast"
// trader reacts in 6µs, the "slow" one in 14µs — but the fast trader
// sits behind the worse network path (40% more latency each way). On a
// fair exchange the fast trader must win every race; with direct
// delivery the network decides instead.
package main

import (
	"fmt"

	"dbo"
)

func run(scheme dbo.Scheme) *dbo.SimResult {
	return dbo.Simulate(dbo.SimConfig{
		Scheme:   scheme,
		Seed:     7,
		N:        2,
		Skew:     []float64{1.4, 1.0}, // MP 1 (fast trader) has the bad path
		RTMin:    6 * dbo.Microsecond, // see TradeProb note below
		RTMax:    14 * dbo.Microsecond,
		Duration: 100 * dbo.Millisecond,
	})
}

func main() {
	// With RT drawn from U[6µs,14µs] per trade the *expected* winner
	// varies per race; the fairness metric scores every competing pair.
	direct := run(dbo.Direct)
	fair := run(dbo.DBO)

	fmt.Println("Two traders, same races. MP1 reacts faster on average but has")
	fmt.Println("a 40% slower network path.")
	fmt.Println()
	fmt.Printf("direct delivery: %6.2f%% of races decided by speed (the rest by the network)\n",
		100*direct.Fairness)
	fmt.Printf("DBO:             %6.2f%% of races decided by speed\n", 100*fair.Fairness)
	fmt.Println()

	if len(direct.Violations) > 0 {
		fmt.Println("examples of races the network stole under direct delivery:")
		for i, v := range direct.Violations {
			if i == 5 {
				break
			}
			fmt.Printf("  race %4d: MP%d responded in %v but lost to MP%d (%v)\n",
				v.Trigger, v.Faster.MP, v.Faster.RT, v.Slower.MP, v.Slower.RT)
		}
	}
	fmt.Println()
	fmt.Printf("DBO end-to-end latency: %v avg / %v p99 — the cost of fairness over\n",
		fair.Latency.Avg, fair.Latency.P99)
	fmt.Printf("the Theorem-3 bound (%v avg), which any fair ordering must pay.\n",
		fair.MaxRTT.Avg)
}
