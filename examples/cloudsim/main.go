// Cloudsim: every ordering scheme on the same trace-driven cloud
// deployment — Direct, CloudEx (two thresholds), FBA, Libra, and DBO —
// reproducing the fairness/latency landscape of §6.
package main

import (
	"fmt"

	"dbo"
)

func main() {
	tr := dbo.CloudTrace(3)
	fmt.Printf("network: synthetic cloud trace, RTT %v\n\n", tr.Summarize().Mean)

	type row struct {
		name string
		cfg  dbo.SimConfig
	}
	base := dbo.SimConfig{
		Seed:     3,
		N:        10,
		Trace:    tr,
		Duration: 150 * dbo.Millisecond,
	}
	mk := func(name string, mut func(*dbo.SimConfig)) row {
		cfg := base
		mut(&cfg)
		return row{name, cfg}
	}
	rows := []row{
		mk("direct", func(c *dbo.SimConfig) { c.Scheme = dbo.Direct }),
		mk("cloudex-60", func(c *dbo.SimConfig) { c.Scheme = dbo.CloudEx; c.C1 = 60 * dbo.Microsecond; c.C2 = c.C1 }),
		mk("cloudex-300", func(c *dbo.SimConfig) { c.Scheme = dbo.CloudEx; c.C1 = 300 * dbo.Microsecond; c.C2 = c.C1 }),
		mk("fba-1ms", func(c *dbo.SimConfig) { c.Scheme = dbo.FBA }),
		mk("libra-50us", func(c *dbo.SimConfig) { c.Scheme = dbo.Libra }),
		mk("dbo", func(c *dbo.SimConfig) { c.Scheme = dbo.DBO }),
	}

	fmt.Printf("%-12s %10s %12s %12s %12s\n", "scheme", "fairness", "avg", "p99", "p999")
	for _, r := range rows {
		res := dbo.Simulate(r.cfg)
		fmt.Printf("%-12s %9.2f%% %12v %12v %12v\n", r.name,
			100*res.Fairness, res.Latency.Avg, res.Latency.P99, res.Latency.P999)
	}
	fmt.Println()
	fmt.Println("Reading: CloudEx only reaches fairness with thresholds paid on every")
	fmt.Println("trade; FBA is fair-by-lottery at auction-interval latency; DBO is")
	fmt.Println("guaranteed fair at a small premium over the raw network.")
}
