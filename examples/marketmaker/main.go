// Marketmaker: a live loopback deployment where the participants run
// real (if simple) strategies on top of the participant-side substrates:
//
//   - MP 1 is a market maker: it reconstructs the top of book from the
//     delivered data stream (internal/book) and quotes around its mid;
//   - MP 2 is a taker: it watches the same reconstruction and crosses
//     the spread whenever the book's imbalance signal fires.
//
// Both see the *same paced stream* through their release buffers, and
// their orders are sequenced by delivery clock — the fair playground
// the paper promises, demonstrated with the actual trading loop
// (market data → book view → decision → tagged order → matching engine
// → execution reports) closed end to end over UDP.
package main

import (
	"fmt"
	"os"
	"time"

	"dbo"
	"dbo/internal/book"
	"dbo/internal/wire"
)

func main() {
	ex, err := dbo.NewExchange(dbo.ExchangeConfig{
		Listen:       "127.0.0.1:0",
		TickInterval: 10 * time.Millisecond,
		Ticks:        40,
		Delta:        2 * time.Millisecond,
		Tau:          time.Millisecond,
	})
	if err != nil {
		fail(err)
	}
	defer ex.Stop()

	// MP 1 — the market maker. Its strategy alternates sides, always
	// pricing off its reconstructed book view rather than the raw tick.
	mmBook := book.NewBuilder()
	mmFills := 0
	side := dbo.Buy
	mm, err := dbo.NewParticipant(dbo.ParticipantConfig{
		ID: 1, Listen: "127.0.0.1:0", CES: ex.Addr().String(),
		CESTCP: ex.TCPAddr().String(), // reliable reverse path
		Delta:  2 * time.Millisecond, Tau: time.Millisecond,
		OnExec: func(e wire.Exec) { mmFills++ },
		Strategy: func(dp dbo.DataPoint) (bool, time.Duration, dbo.Side, int64, int64) {
			v := mmBook.Apply(dp, dbo.Time(time.Now().UnixNano()))
			if !v.Valid() {
				return false, 0, dbo.Buy, 0, 0
			}
			side = 1 - side // quote both sides alternately
			price := v.Mid2() / 2
			if side == dbo.Buy {
				price-- // inside the spread
			} else {
				price++
			}
			return true, 300 * time.Microsecond, side, price, 2
		},
	})
	if err != nil {
		fail(err)
	}
	defer mm.Stop()

	// MP 2 — the taker: lifts the maker when the book looks one-sided.
	tkBook := book.NewBuilder()
	tkFills := 0
	tk, err := dbo.NewParticipant(dbo.ParticipantConfig{
		ID: 2, Listen: "127.0.0.1:0", CES: ex.Addr().String(),
		CESTCP: ex.TCPAddr().String(),
		Delta:  2 * time.Millisecond, Tau: time.Millisecond,
		OnExec: func(e wire.Exec) { tkFills++ },
		Strategy: func(dp dbo.DataPoint) (bool, time.Duration, dbo.Side, int64, int64) {
			v := tkBook.Apply(dp, dbo.Time(time.Now().UnixNano()))
			if !v.Valid() {
				return false, 0, dbo.Buy, 0, 0
			}
			imb := v.Imbalance()
			switch {
			case imb > 0.2: // bid-heavy: buy aggressively at the ask
				return true, 500 * time.Microsecond, dbo.Buy, v.Ask, 1
			case imb < -0.2:
				return true, 500 * time.Microsecond, dbo.Sell, v.Bid, 1
			}
			return false, 0, dbo.Buy, 0, 0
		},
	})
	if err != nil {
		fail(err)
	}
	defer tk.Stop()

	if err := ex.Start([]dbo.ParticipantAddr{
		{ID: 1, Addr: mm.Addr().String()},
		{ID: 2, Addr: tk.Addr().String()},
	}); err != nil {
		fail(err)
	}
	fmt.Printf("exchange %s — maker MP1 and taker MP2 trading for ~0.5s\n", ex.Addr())

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(ex.Forwarded()) >= 30 && ex.Executions() > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond) // let final exec reports land

	trades := ex.Forwarded()
	perMP := map[dbo.ParticipantID]int{}
	for _, t := range trades {
		perMP[t.MP]++
	}
	fmt.Printf("orders sequenced: %d (maker %d, taker %d)\n", len(trades), perMP[1], perMP[2])
	fmt.Printf("matching engine fills: %d\n", ex.Executions())
	fmt.Printf("execution reports delivered: maker %d, taker %d\n", mmFills, tkFills)
	if v := mmBook.View(1); v != nil && v.Valid() {
		fmt.Printf("maker's final book view: bid %d×%d / ask %d×%d (spread %d)\n",
			v.Bid, v.BidSize, v.Ask, v.AskSize, v.Spread())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
