// Quickstart: simulate the same cloud workload under Direct delivery
// and under DBO, and compare fairness and latency — the paper's Table 3
// in ~30 lines.
package main

import (
	"fmt"

	"dbo"
)

func main() {
	base := dbo.SimConfig{
		Seed:     42,
		N:        10,                    // ten market participants
		Duration: 100 * dbo.Millisecond, // 100ms of trading at a 40µs tick
	}

	direct := base
	direct.Scheme = dbo.Direct
	rd := dbo.Simulate(direct)

	fair := base
	fair.Scheme = dbo.DBO // δ=20µs, κ=0.25, τ=20µs defaults
	rf := dbo.Simulate(fair)

	fmt.Println("scheme   fairness   avg-latency   p99-latency")
	fmt.Printf("direct   %7.2f%%   %11v   %11v\n", 100*rd.Fairness, rd.Latency.Avg, rd.Latency.P99)
	fmt.Printf("dbo      %7.2f%%   %11v   %11v\n", 100*rf.Fairness, rf.Latency.Avg, rf.Latency.P99)
	fmt.Printf("\nDBO forwarded %d trades across %d speed races with zero ordering violations,\npaying %v extra average latency for guaranteed fairness.\n",
		rf.Trades, rf.Races, rf.Latency.Avg-rd.Latency.Avg)
}
