package dbo_test

import (
	"fmt"

	"dbo"
)

// ExampleSimulate runs the paper's cloud workload under DBO and prints
// the guaranteed outcome: every competing pair ordered by response time.
func ExampleSimulate() {
	r := dbo.Simulate(dbo.SimConfig{
		Scheme:   dbo.DBO,
		Seed:     1,
		N:        5,
		Duration: 30 * dbo.Millisecond,
		Warmup:   2 * dbo.Millisecond,
		Drain:    20 * dbo.Millisecond,
	})
	fmt.Printf("fairness %.2f%%, lost trades %d\n", 100*r.Fairness, r.Lost)
	// Output: fairness 100.00%, lost trades 0
}

// ExampleSimulate_baseline contrasts direct delivery on the same
// network: fairness is decided by path latency, not by speed.
func ExampleSimulate_baseline() {
	r := dbo.Simulate(dbo.SimConfig{
		Scheme:   dbo.Direct,
		Seed:     1,
		N:        5,
		Duration: 30 * dbo.Millisecond,
		Warmup:   2 * dbo.Millisecond,
		Drain:    20 * dbo.Millisecond,
	})
	fmt.Printf("direct delivery is unfair: %v\n", r.Fairness < 0.9)
	// Output: direct delivery is unfair: true
}

// ExampleDeliveryClock shows the lexicographic ordering rule (§4.1.1).
func ExampleDeliveryClock() {
	fast := dbo.DeliveryClock{Point: 7, Elapsed: 6 * dbo.Microsecond}
	slow := dbo.DeliveryClock{Point: 7, Elapsed: 14 * dbo.Microsecond}
	next := dbo.DeliveryClock{Point: 8, Elapsed: 0}
	fmt.Println(fast.Less(slow), slow.Less(next))
	// Output: true true
}
