// Package dbo is a from-scratch reproduction of "DBO: Fairness for
// Cloud-Hosted Financial Exchanges" (SIGCOMM 2023): Delivery Based
// Ordering for speed-race trades on networks with unpredictable,
// unbounded latency and no clock synchronization.
//
// # Architecture
//
// The library has two execution modes over one core:
//
//   - Simulation (Simulate): a deterministic discrete-event harness
//     with virtual-nanosecond time, trace-driven network latency, and
//     the paper's full evaluation workload. All tables and figures are
//     regenerated on this mode (see internal/experiment and
//     bench_test.go).
//   - Live (NewExchange / NewParticipant): the same DBO components over
//     real UDP sockets, one event loop per node, genuinely
//     unsynchronized clocks — the cloud deployment of §5.
//
// The core pieces, usable through the simulation and live façades:
//
//   - delivery clocks ⟨last delivered point, locally measured elapsed⟩
//     tagging every trade (§4.1.1),
//   - CES-side batching into (1+κ)·δ windows plus RB-side pacing with a
//     minimum inter-batch gap of δ (§4.1.2),
//   - an ordering buffer that releases trades in delivery-clock order
//     once every participant's heartbeat watermark has passed (§4.1.3),
//     with straggler mitigation (§4.2.1) and sharded scaling (§5.2),
//   - a price-time-priority matching engine that DBO leaves unmodified,
//   - baselines: Direct/FCFS, CloudEx (perfect clock sync), frequent
//     batch auctions, and Libra, and
//   - the pairwise response-time fairness metric of §6.1.
package dbo

import (
	"dbo/internal/exchange"
	"dbo/internal/flight"
	"dbo/internal/market"
	"dbo/internal/node"
	"dbo/internal/sim"
	"dbo/internal/trace"
)

// Scheme selects an ordering mechanism for simulation.
type Scheme = exchange.Scheme

// Available schemes.
const (
	Direct  = exchange.Direct
	DBO     = exchange.DBO
	CloudEx = exchange.CloudEx
	FBA     = exchange.FBA
	Libra   = exchange.Libra
)

// SimConfig configures one simulated deployment and workload; zero
// values take the paper's defaults (δ=20µs, κ=0.25, τ=20µs, 40µs tick,
// 10 MPs, cloud trace).
type SimConfig = exchange.Config

// SimResult is a scored simulation run.
type SimResult = exchange.Result

// Hooks are optional simulation taps.
type Hooks = exchange.Hooks

// Simulate runs one deterministic simulation.
func Simulate(cfg SimConfig) *SimResult { return exchange.Run(cfg) }

// DefaultSkew spreads n static latency multipliers over [1−s, 1+s],
// modelling non-equidistant cloud paths.
func DefaultSkew(n int, s float64) []float64 { return exchange.DefaultSkew(n, s) }

// Time is virtual (or node-local) time in nanoseconds.
type Time = sim.Time

// Time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Domain types shared by both modes.
type (
	// ParticipantID identifies a market participant.
	ParticipantID = market.ParticipantID
	// PointID identifies a market data point.
	PointID = market.PointID
	// DeliveryClock is the paper's logical clock tuple.
	DeliveryClock = market.DeliveryClock
	// Trade is an order tagged and sequenced by the system.
	Trade = market.Trade
	// DataPoint is one market data update.
	DataPoint = market.DataPoint
	// Side is an order side.
	Side = market.Side
)

// Order sides.
const (
	Buy  = market.Buy
	Sell = market.Sell
)

// Trace is a network RTT series; CloudTrace and LabTrace synthesize the
// paper's two environments deterministically from a seed.
type Trace = trace.Trace

// CloudTrace synthesizes a public-cloud RTT trace (Figure 11 shape).
func CloudTrace(seed uint64) *Trace { return trace.Cloud(seed).Generate() }

// LabTrace synthesizes a bare-metal testbed RTT trace (Table 2 shape).
func LabTrace(seed uint64) *Trace { return trace.Lab(seed).Generate() }

// Live deployment (§5) over UDP.
type (
	// ExchangeConfig configures a live CES node.
	ExchangeConfig = node.CESConfig
	// Exchange is a running CES (ordering buffer + matching engine).
	Exchange = node.CES
	// ParticipantConfig configures a live MP node (with co-located RB).
	ParticipantConfig = node.MPConfig
	// Participant is a running MP node.
	Participant = node.MP
	// ParticipantAddr names an MP endpoint for the CES.
	ParticipantAddr = node.MPAddr
	// Strategy decides an MP's reaction to market data.
	Strategy = node.Strategy
)

// NewExchange binds a live CES socket; call its Start with the
// participant addresses once they are known.
func NewExchange(cfg ExchangeConfig) (*Exchange, error) { return node.NewCES(cfg) }

// NewParticipant starts a live MP node.
func NewParticipant(cfg ParticipantConfig) (*Participant, error) { return node.StartMP(cfg) }

// Flight recorder (internal/flight): a bounded, deterministic
// structured-event trace of the full trade lifecycle. Attach one to
// SimConfig.Flight, ExchangeConfig.Flight, or ParticipantConfig.Flight,
// then export with WriteFlight and analyze with cmd/dbo-flight.
type (
	// FlightRecorder is a bounded in-memory event ring.
	FlightRecorder = flight.Recorder
	// FlightEvent is one lifecycle event.
	FlightEvent = flight.Event
)

// DefaultFlightCapacity is the recorder ring size NewFlightRecorder(0)
// uses.
const DefaultFlightCapacity = flight.DefaultCapacity

// NewFlightRecorder returns an enabled recorder holding the most recent
// capacity events (0 = DefaultFlightCapacity).
func NewFlightRecorder(capacity int) *FlightRecorder { return flight.NewRecorder(capacity) }
