// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment at a
// reduced (but statistically meaningful) duration per iteration and
// reports the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// doubles as the reproduction harness. cmd/dbo-bench prints the same
// experiments at full scale in the paper's row format (and, with
// -json, as a machine-readable BENCH_<date>.json snapshot).
package dbo_test

import (
	"slices"
	"testing"

	"dbo/internal/exchange"
	"dbo/internal/experiment"
	"dbo/internal/sim"
)

// benchOpts shrinks experiments so a -bench sweep stays tractable while
// preserving the shapes (≥ thousands of trades per run).
func benchOpts(seed uint64) experiment.Opts {
	return experiment.Opts{Seed: seed, Duration: 50 * sim.Millisecond}
}

// benchMetricNames declares, per benchmark, the exact custom metrics it
// reports, in order. benchAgg.report enforces the declaration at bench
// time and TestBenchMetricNamesStable pins it, so downstream tooling
// that greps -bench output by metric name never silently loses a
// series to a rename.
var benchMetricNames = map[string][]string{
	"BenchmarkTable2":              {"direct_fair_%", "dbo_avg_µs", "dbo_p999_µs"},
	"BenchmarkTable3":              {"direct_fair_%", "dbo_fair_%", "dbo_p999_µs"},
	"BenchmarkTable4":              {"dbo_fair_rt10_15", "dbo_fair_rt35_40", "direct_fair_rt10_15"},
	"BenchmarkFigure2":             {"cloudex_fair_%", "cloudex_overruns", "dbo_fair_%"},
	"BenchmarkFigure7":             {"drain_slope", "theory_slope", "peak_queue"},
	"BenchmarkFigure11":            {"rtt_mean_µs", "rtt_max_µs"},
	"BenchmarkFigure12":            {"dbo_avg_n10_µs", "dbo_avg_n90_µs"},
	"BenchmarkFigure13":            {"dbo60_fair_%", "dbo60_avg_µs"},
	"BenchmarkExtensionSync":       {"plain_fair", "assisted_fair"},
	"BenchmarkExtensionExternal":   {"bypass_fair", "serialized_fair"},
	"BenchmarkExtensionPnL":        {"direct_fastest_wins_%", "dbo_fastest_wins_%"},
	"BenchmarkSimulatorThroughput": {"trades/s"},
	"BenchmarkPipeline":            {"trades/s", "allocs/op_measured"},
	"BenchmarkPipelineLegacyQueue": {"trades/s", "allocs/op_measured"},
}

// benchAgg accumulates metric observations across every benchmark
// iteration and reports the per-iteration mean, instead of whichever
// iteration happened to run last. The experiments are deterministic in
// their seed today, so mean == last; the aggregation keeps the metrics
// honest if an experiment ever becomes iteration-dependent.
type benchAgg struct {
	b     *testing.B
	names []string
	sums  map[string]float64
	count map[string]float64
}

func newBenchAgg(b *testing.B) *benchAgg {
	return &benchAgg{b: b, sums: map[string]float64{}, count: map[string]float64{}}
}

func (a *benchAgg) add(name string, v float64) {
	if _, ok := a.sums[name]; !ok {
		a.names = append(a.names, name)
	}
	a.sums[name] += v
	a.count[name]++
}

// report emits the means, after checking the observed metric set
// against the benchmark's declaration in benchMetricNames.
func (a *benchAgg) report() {
	if want := benchMetricNames[a.b.Name()]; !slices.Equal(a.names, want) {
		a.b.Fatalf("metric names drifted: reported %q, declared %q — update benchMetricNames intentionally", a.names, want)
	}
	for _, n := range a.names {
		a.b.ReportMetric(a.sums[n]/a.count[n], n)
	}
}

// TestBenchMetricNamesStable pins the metric vocabulary: renaming or
// dropping a -bench series requires editing both benchMetricNames and
// this golden list, so it cannot happen as a silent side effect.
func TestBenchMetricNamesStable(t *testing.T) {
	golden := []string{
		"BenchmarkExtensionExternal: bypass_fair serialized_fair",
		"BenchmarkExtensionPnL: direct_fastest_wins_% dbo_fastest_wins_%",
		"BenchmarkExtensionSync: plain_fair assisted_fair",
		"BenchmarkFigure11: rtt_mean_µs rtt_max_µs",
		"BenchmarkFigure12: dbo_avg_n10_µs dbo_avg_n90_µs",
		"BenchmarkFigure13: dbo60_fair_% dbo60_avg_µs",
		"BenchmarkFigure2: cloudex_fair_% cloudex_overruns dbo_fair_%",
		"BenchmarkFigure7: drain_slope theory_slope peak_queue",
		"BenchmarkPipeline: trades/s allocs/op_measured",
		"BenchmarkPipelineLegacyQueue: trades/s allocs/op_measured",
		"BenchmarkSimulatorThroughput: trades/s",
		"BenchmarkTable2: direct_fair_% dbo_avg_µs dbo_p999_µs",
		"BenchmarkTable3: direct_fair_% dbo_fair_% dbo_p999_µs",
		"BenchmarkTable4: dbo_fair_rt10_15 dbo_fair_rt35_40 direct_fair_rt10_15",
	}
	var got []string
	for bench, names := range benchMetricNames {
		line := bench + ":"
		seen := map[string]bool{}
		for _, n := range names {
			if n == "" || seen[n] {
				t.Errorf("%s declares empty or duplicate metric %q", bench, n)
			}
			seen[n] = true
			line += " " + n
		}
		got = append(got, line)
	}
	slices.Sort(got)
	if !slices.Equal(got, golden) {
		t.Errorf("benchmark metric names drifted — update the golden list intentionally:\ngot:\n  %v\nwant:\n  %v", got, golden)
	}
}

func BenchmarkTable2(b *testing.B) {
	a := newBenchAgg(b)
	for i := 0; i < b.N; i++ {
		r := experiment.Table2(benchOpts(1))
		a.add("direct_fair_%", 100*r.Rows[0].Fairness)
		a.add("dbo_avg_µs", r.Rows[2].Latency.Avg.Micros())
		a.add("dbo_p999_µs", r.Rows[2].Latency.P999.Micros())
	}
	a.report()
}

func BenchmarkTable3(b *testing.B) {
	a := newBenchAgg(b)
	for i := 0; i < b.N; i++ {
		r := experiment.Table3(benchOpts(1))
		a.add("direct_fair_%", 100*r.Rows[0].Fairness)
		a.add("dbo_fair_%", 100*r.Rows[2].Fairness)
		a.add("dbo_p999_µs", r.Rows[2].Latency.P999.Micros())
	}
	a.report()
}

func BenchmarkTable4(b *testing.B) {
	a := newBenchAgg(b)
	for i := 0; i < b.N; i++ {
		r := experiment.Table4(benchOpts(1))
		a.add("dbo_fair_rt10_15", r.DBO[0])
		a.add("dbo_fair_rt35_40", r.DBO[len(r.DBO)-1])
		a.add("direct_fair_rt10_15", r.Direct[0])
	}
	a.report()
}

func BenchmarkFigure2(b *testing.B) {
	a := newBenchAgg(b)
	for i := 0; i < b.N; i++ {
		r := experiment.Figure2(benchOpts(2))
		a.add("cloudex_fair_%", 100*r.CloudExFairness)
		a.add("cloudex_overruns", float64(r.CloudExOverruns))
		a.add("dbo_fair_%", 100*r.DBOFairness)
	}
	a.report()
}

func BenchmarkFigure7(b *testing.B) {
	a := newBenchAgg(b)
	for i := 0; i < b.N; i++ {
		r := experiment.Figure7(experiment.Opts{Seed: 3})
		a.add("drain_slope", r.DrainSlope)
		a.add("theory_slope", r.Kappa/(1+r.Kappa))
		a.add("peak_queue", float64(r.PeakQueue))
	}
	a.report()
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.Figure10(benchOpts(4))
	}
}

func BenchmarkFigure11(b *testing.B) {
	a := newBenchAgg(b)
	for i := 0; i < b.N; i++ {
		r := experiment.Figure11(experiment.Opts{Seed: 5})
		a.add("rtt_mean_µs", r.Stats.Mean.Micros())
		a.add("rtt_max_µs", r.Stats.Max.Micros())
	}
	a.report()
}

func BenchmarkFigure12(b *testing.B) {
	a := newBenchAgg(b)
	for i := 0; i < b.N; i++ {
		r := experiment.Figure12(experiment.Opts{Seed: 6, Duration: 20 * sim.Millisecond})
		a.add("dbo_avg_n10_µs", r.DBOMean[0])
		a.add("dbo_avg_n90_µs", r.DBOMean[len(r.DBOMean)-1])
	}
	a.report()
}

func BenchmarkFigure13(b *testing.B) {
	a := newBenchAgg(b)
	for i := 0; i < b.N; i++ {
		r := experiment.Figure13(experiment.Opts{Seed: 7, Duration: 20 * sim.Millisecond})
		last := r.Points[len(r.Points)-1]
		a.add("dbo60_fair_%", 100*last.Fairness)
		a.add("dbo60_avg_µs", last.Mean)
	}
	a.report()
}

func BenchmarkAblationTau(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.AblationTau(experiment.Opts{Seed: 8, Duration: 20 * sim.Millisecond})
	}
}

func BenchmarkAblationKappa(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.AblationKappa(experiment.Opts{Seed: 9, Duration: 20 * sim.Millisecond})
	}
}

func BenchmarkAblationStraggler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.AblationStraggler(experiment.Opts{Seed: 10, Duration: 20 * sim.Millisecond})
	}
}

func BenchmarkAblationShards(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.AblationShards(experiment.Opts{Seed: 11, Duration: 15 * sim.Millisecond})
	}
}

func BenchmarkExtensionSync(b *testing.B) {
	a := newBenchAgg(b)
	for i := 0; i < b.N; i++ {
		r := experiment.AblationSync(experiment.Opts{Seed: 12, Duration: 30 * sim.Millisecond})
		a.add("plain_fair", r.PlainFairness)
		a.add("assisted_fair", r.AssistedFairness)
	}
	a.report()
}

func BenchmarkExtensionExternal(b *testing.B) {
	a := newBenchAgg(b)
	for i := 0; i < b.N; i++ {
		r := experiment.ExternalStreams(experiment.Opts{Seed: 13, Duration: 30 * sim.Millisecond})
		a.add("bypass_fair", r.BypassFairness)
		a.add("serialized_fair", r.SerializedFairness)
	}
	a.report()
}

func BenchmarkExtensionPnL(b *testing.B) {
	a := newBenchAgg(b)
	for i := 0; i < b.N; i++ {
		r := experiment.SpeedPnL(experiment.Opts{Seed: 14, Duration: 30 * sim.Millisecond})
		a.add("direct_fastest_wins_%", 100*r.FastestWinsDirect)
		a.add("dbo_fastest_wins_%", 100*r.FastestWinsDBO)
	}
	a.report()
}

// BenchmarkSimulatorThroughput measures raw harness speed: simulated
// trades processed per second of wall time (useful when sizing longer
// reproductions). The rate is computed over the whole run, so it is an
// aggregate by construction; the agg only validates the metric name.
func BenchmarkSimulatorThroughput(b *testing.B) {
	a := newBenchAgg(b)
	trades := 0
	for i := 0; i < b.N; i++ {
		r := exchange.Run(exchange.Config{
			Scheme:   exchange.DBO,
			Seed:     uint64(i),
			N:        10,
			Duration: 20 * sim.Millisecond,
			Warmup:   2 * sim.Millisecond,
			Drain:    10 * sim.Millisecond,
		})
		trades += r.Trades
	}
	a.add("trades/s", float64(trades)/b.Elapsed().Seconds())
	a.report()
}

// benchPipeline measures the tag→enqueue→release micro-benchmark (the
// BENCH_*.json pipeline section) under go test -bench.
func benchPipeline(b *testing.B, legacy bool) {
	a := newBenchAgg(b)
	res := experiment.RunPipelineBench(
		experiment.PipelineOpts{Seed: 1, Legacy: legacy},
		b.N,
		func() int64 { return int64(b.Elapsed()) },
	)
	a.add("trades/s", res.TradesPerSec)
	a.add("allocs/op_measured", res.AllocsPerOp)
	a.report()
}

func BenchmarkPipeline(b *testing.B)            { benchPipeline(b, false) }
func BenchmarkPipelineLegacyQueue(b *testing.B) { benchPipeline(b, true) }
