// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment at a
// reduced (but statistically meaningful) duration per iteration and
// reports the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// doubles as the reproduction harness. cmd/dbo-bench prints the same
// experiments at full scale in the paper's row format.
package dbo_test

import (
	"testing"

	"dbo/internal/exchange"
	"dbo/internal/experiment"
	"dbo/internal/sim"
)

// benchOpts shrinks experiments so a -bench sweep stays tractable while
// preserving the shapes (≥ thousands of trades per run).
func benchOpts(seed uint64) experiment.Opts {
	return experiment.Opts{Seed: seed, Duration: 50 * sim.Millisecond}
}

func BenchmarkTable2(b *testing.B) {
	var r *experiment.TableResult
	for i := 0; i < b.N; i++ {
		r = experiment.Table2(benchOpts(1))
	}
	b.ReportMetric(100*r.Rows[0].Fairness, "direct_fair_%")
	b.ReportMetric(r.Rows[2].Latency.Avg.Micros(), "dbo_avg_µs")
	b.ReportMetric(r.Rows[2].Latency.P999.Micros(), "dbo_p999_µs")
}

func BenchmarkTable3(b *testing.B) {
	var r *experiment.TableResult
	for i := 0; i < b.N; i++ {
		r = experiment.Table3(benchOpts(1))
	}
	b.ReportMetric(100*r.Rows[0].Fairness, "direct_fair_%")
	b.ReportMetric(100*r.Rows[2].Fairness, "dbo_fair_%")
	b.ReportMetric(r.Rows[2].Latency.P999.Micros(), "dbo_p999_µs")
}

func BenchmarkTable4(b *testing.B) {
	var r *experiment.Table4Result
	for i := 0; i < b.N; i++ {
		r = experiment.Table4(benchOpts(1))
	}
	b.ReportMetric(r.DBO[0], "dbo_fair_rt10_15")
	b.ReportMetric(r.DBO[len(r.DBO)-1], "dbo_fair_rt35_40")
	b.ReportMetric(r.Direct[0], "direct_fair_rt10_15")
}

func BenchmarkFigure2(b *testing.B) {
	var r *experiment.Figure2Result
	for i := 0; i < b.N; i++ {
		r = experiment.Figure2(benchOpts(2))
	}
	b.ReportMetric(100*r.CloudExFairness, "cloudex_fair_%")
	b.ReportMetric(float64(r.CloudExOverruns), "cloudex_overruns")
	b.ReportMetric(100*r.DBOFairness, "dbo_fair_%")
}

func BenchmarkFigure7(b *testing.B) {
	var r *experiment.Figure7Result
	for i := 0; i < b.N; i++ {
		r = experiment.Figure7(experiment.Opts{Seed: 3})
	}
	b.ReportMetric(r.DrainSlope, "drain_slope")
	b.ReportMetric(r.Kappa/(1+r.Kappa), "theory_slope")
	b.ReportMetric(float64(r.PeakQueue), "peak_queue")
}

func BenchmarkFigure10(b *testing.B) {
	var r *experiment.Figure10Result
	for i := 0; i < b.N; i++ {
		r = experiment.Figure10(benchOpts(4))
	}
	_ = r
}

func BenchmarkFigure11(b *testing.B) {
	var r *experiment.Figure11Result
	for i := 0; i < b.N; i++ {
		r = experiment.Figure11(experiment.Opts{Seed: 5})
	}
	b.ReportMetric(r.Stats.Mean.Micros(), "rtt_mean_µs")
	b.ReportMetric(r.Stats.Max.Micros(), "rtt_max_µs")
}

func BenchmarkFigure12(b *testing.B) {
	var r *experiment.Figure12Result
	for i := 0; i < b.N; i++ {
		r = experiment.Figure12(experiment.Opts{Seed: 6, Duration: 20 * sim.Millisecond})
	}
	b.ReportMetric(r.DBOMean[0], "dbo_avg_n10_µs")
	b.ReportMetric(r.DBOMean[len(r.DBOMean)-1], "dbo_avg_n90_µs")
}

func BenchmarkFigure13(b *testing.B) {
	var r *experiment.Figure13Result
	for i := 0; i < b.N; i++ {
		r = experiment.Figure13(experiment.Opts{Seed: 7, Duration: 20 * sim.Millisecond})
	}
	last := r.Points[len(r.Points)-1]
	b.ReportMetric(100*last.Fairness, "dbo60_fair_%")
	b.ReportMetric(last.Mean, "dbo60_avg_µs")
}

func BenchmarkAblationTau(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.AblationTau(experiment.Opts{Seed: 8, Duration: 20 * sim.Millisecond})
	}
}

func BenchmarkAblationKappa(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.AblationKappa(experiment.Opts{Seed: 9, Duration: 20 * sim.Millisecond})
	}
}

func BenchmarkAblationStraggler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.AblationStraggler(experiment.Opts{Seed: 10, Duration: 20 * sim.Millisecond})
	}
}

func BenchmarkAblationShards(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.AblationShards(experiment.Opts{Seed: 11, Duration: 15 * sim.Millisecond})
	}
}

func BenchmarkExtensionSync(b *testing.B) {
	var r *experiment.SyncAssistResult
	for i := 0; i < b.N; i++ {
		r = experiment.AblationSync(experiment.Opts{Seed: 12, Duration: 30 * sim.Millisecond})
	}
	b.ReportMetric(r.PlainFairness, "plain_fair")
	b.ReportMetric(r.AssistedFairness, "assisted_fair")
}

func BenchmarkExtensionExternal(b *testing.B) {
	var r *experiment.ExternalResult
	for i := 0; i < b.N; i++ {
		r = experiment.ExternalStreams(experiment.Opts{Seed: 13, Duration: 30 * sim.Millisecond})
	}
	b.ReportMetric(r.BypassFairness, "bypass_fair")
	b.ReportMetric(r.SerializedFairness, "serialized_fair")
}

func BenchmarkExtensionPnL(b *testing.B) {
	var r *experiment.PnLResult
	for i := 0; i < b.N; i++ {
		r = experiment.SpeedPnL(experiment.Opts{Seed: 14, Duration: 30 * sim.Millisecond})
	}
	b.ReportMetric(100*r.FastestWinsDirect, "direct_fastest_wins_%")
	b.ReportMetric(100*r.FastestWinsDBO, "dbo_fastest_wins_%")
}

// BenchmarkSimulatorThroughput measures raw harness speed: simulated
// trades processed per second of wall time (useful when sizing longer
// reproductions).
func BenchmarkSimulatorThroughput(b *testing.B) {
	trades := 0
	for i := 0; i < b.N; i++ {
		r := exchange.Run(exchange.Config{
			Scheme:   exchange.DBO,
			Seed:     uint64(i),
			N:        10,
			Duration: 20 * sim.Millisecond,
			Warmup:   2 * sim.Millisecond,
			Drain:    10 * sim.Millisecond,
		})
		trades += r.Trades
	}
	b.ReportMetric(float64(trades)/b.Elapsed().Seconds(), "trades/s")
}
