// Command dbo-mp runs a live market participant with its co-located
// release buffer: it receives the paced market data stream, reacts
// after a configurable response time, and submits delivery-clock-tagged
// trades to the exchange.
//
//	dbo-mp -id 1 -listen 127.0.0.1:7001 -ces 127.0.0.1:7000 \
//	       -delta 500us -tau 500us -rt 200us -prob 0.8
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"net/http"
	"os"
	"os/signal"
	"time"

	"dbo"
	"dbo/internal/audit"
	"dbo/internal/flight"
	"dbo/internal/metrics"
)

func main() {
	id := flag.Int("id", 1, "participant id")
	listen := flag.String("listen", "127.0.0.1:7001", "RB ingress UDP address")
	ces := flag.String("ces", "127.0.0.1:7000", "exchange UDP address")
	cesTCP := flag.String("ces-tcp", "", "exchange TCP address (use the reliable reverse path)")
	delta := flag.Duration("delta", 500*time.Microsecond, "δ pacing gap (must match the CES)")
	tau := flag.Duration("tau", 500*time.Microsecond, "τ heartbeat period")
	rt := flag.Duration("rt", 200*time.Microsecond, "base response time")
	jitter := flag.Duration("jitter", 100*time.Microsecond, "uniform response jitter")
	prob := flag.Float64("prob", 1.0, "probability of trading per data point")
	seed := flag.Uint64("seed", 0, "strategy seed (0 = participant id)")
	httpAddr := flag.String("http", "", "serve /metrics, /metrics/prom, /debug/flight and /debug/audit here")
	flightBuf := flag.Int("flight-buf", 0, "flight recorder ring capacity (0 = default)")
	pprofOn := flag.Bool("pprof", false, "also serve /debug/pprof/ and Go runtime gauges on -http")
	slack := flag.Duration("audit-slack", 50*time.Microsecond, "δ-gap audit slack (absorbs scheduler jitter on live nodes)")
	flag.Parse()

	if *seed == 0 {
		*seed = uint64(*id)
	}
	rng := rand.New(rand.NewPCG(*seed, *seed^0xbeef))
	strategy := func(dp dbo.DataPoint) (bool, time.Duration, dbo.Side, int64, int64) {
		if rng.Float64() >= *prob {
			return false, 0, dbo.Buy, 0, 0
		}
		d := *rt
		if *jitter > 0 {
			d += time.Duration(rng.Int64N(int64(*jitter)))
		}
		side := dbo.Buy
		if rng.IntN(2) == 1 {
			side = dbo.Sell
		}
		return true, d, side, dp.Price, 1
	}

	var rec *dbo.FlightRecorder
	if *httpAddr != "" {
		rec = dbo.NewFlightRecorder(*flightBuf)
	}
	// δ-gap pacing and batch atomicity are audited where delivery
	// happens — here, on the participant's own clock.
	auditor := audit.New(audit.Config{Delta: dbo.Time(*delta), Slack: dbo.Time(*slack)})
	mp, err := dbo.NewParticipant(dbo.ParticipantConfig{
		ID:       dbo.ParticipantID(*id),
		Listen:   *listen,
		CES:      *ces,
		CESTCP:   *cesTCP,
		Delta:    *delta,
		Tau:      *tau,
		Strategy: strategy,
		Flight:   rec,
		Auditor:  auditor,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer mp.Stop()
	auditor.Register(mp.Metrics())
	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", mp.Metrics().Handler())
		mux.Handle("/metrics/prom", mp.Metrics().PromHandler())
		mux.Handle("/debug/flight", flight.Handler(rec))
		mux.Handle("/debug/audit", audit.Handler(auditor))
		if *pprofOn {
			metrics.MountPprof(mux)
			metrics.RegisterRuntime(mp.Metrics())
		}
		go func() {
			if err := http.ListenAndServe(*httpAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "http:", err)
			}
		}()
		fmt.Printf("serving /metrics, /debug/flight and /debug/audit on %s\n", *httpAddr)
	}
	fmt.Printf("MP %d listening on %s, trading towards %s (rt %v±%v)\n",
		*id, mp.Addr(), *ces, *rt, *jitter)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("shutting down")
}
