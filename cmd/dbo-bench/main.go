// Command dbo-bench regenerates the paper's tables and figures (and the
// DESIGN.md ablations) and prints them in the paper's row format.
//
// Usage:
//
//	dbo-bench [-exp all|table2|table3|table4|fig2|fig7|fig10|fig11|fig12|fig13|tau|kappa|straggler|shards]
//	          [-seed N] [-ms simulated-milliseconds]
//	dbo-bench -json [-short] [-out FILE|-] [-compare BASELINE] [-seed N]
//
// With -json it instead emits one machine-readable benchmark
// trajectory snapshot (BENCH_<date>.json; schema in
// internal/experiment): tag→enqueue→release throughput and allocs/op
// against the legacy configuration, seeded end-to-end simulation
// trades/sec with hold-time quantiles, and wire codec throughput.
// -compare checks the snapshot against a committed baseline and exits
// non-zero on regression (any allocs/op increase, or a >20% trades/sec
// drop).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dbo/internal/experiment"
	"dbo/internal/sim"
)

type runner struct {
	name string
	desc string
	run  func(experiment.Opts, io.Writer)
}

var runners = []runner{
	{"table2", "bare-metal fairness & latency", func(o experiment.Opts, w io.Writer) { experiment.Table2(o).Render(w) }},
	{"table3", "cloud fairness & latency", func(o experiment.Opts, w io.Writer) { experiment.Table3(o).Render(w) }},
	{"table4", "fairness for RT > δ", func(o experiment.Opts, w io.Writer) { experiment.Table4(o).Render(w) }},
	{"fig2", "CloudEx spike timeline", func(o experiment.Opts, w io.Writer) { experiment.Figure2(o).Render(w) }},
	{"fig7", "batching+pacing drain", func(o experiment.Opts, w io.Writer) { experiment.Figure7(o).Render(w) }},
	{"fig10", "latency CDFs per DBO config", func(o experiment.Opts, w io.Writer) { experiment.Figure10(o).Render(w) }},
	{"fig11", "network trace", func(o experiment.Opts, w io.Writer) { experiment.Figure11(o).Render(w) }},
	{"fig12", "latency vs #participants", func(o experiment.Opts, w io.Writer) { experiment.Figure12(o).Render(w) }},
	{"fig13", "CloudEx vs DBO frontier", func(o experiment.Opts, w io.Writer) { experiment.Figure13(o).Render(w) }},
	{"tau", "ablation: heartbeat period", func(o experiment.Opts, w io.Writer) { experiment.AblationTau(o).Render(w) }},
	{"kappa", "ablation: pacing gain", func(o experiment.Opts, w io.Writer) { experiment.AblationKappa(o).Render(w) }},
	{"straggler", "ablation: straggler mitigation", func(o experiment.Opts, w io.Writer) { experiment.AblationStraggler(o).Render(w) }},
	{"shards", "ablation: OB sharding", func(o experiment.Opts, w io.Writer) { experiment.AblationShards(o).Render(w) }},
	{"sync", "extension: sync-assisted slow trades", func(o experiment.Opts, w io.Writer) { experiment.AblationSync(o).Render(w) }},
	{"external", "extension: external data streams", func(o experiment.Opts, w io.Writer) { experiment.ExternalStreams(o).Render(w) }},
	{"pnl", "extension: who wins the races", func(o experiment.Opts, w io.Writer) { experiment.SpeedPnL(o).Render(w) }},
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (or 'all'); one of: "+names())
	seed := flag.Uint64("seed", 1, "deterministic seed")
	ms := flag.Int64("ms", 0, "override simulated duration in milliseconds (0 = experiment default)")
	jsonMode := flag.Bool("json", false, "emit a BENCH_<date>.json trajectory snapshot instead of tables")
	short := flag.Bool("short", false, "with -json: reduced iteration counts (CI smoke)")
	out := flag.String("out", "", "with -json: output path ('-' = stdout; default BENCH_<date>.json)")
	compare := flag.String("compare", "", "with -json: baseline BENCH_*.json; exit 1 on regression")
	flag.Parse()

	if *jsonMode {
		os.Exit(runJSON(*seed, *short, *out, *compare))
	}

	opts := experiment.Opts{Seed: *seed, Duration: sim.Time(*ms) * sim.Millisecond}
	selected := strings.Split(*exp, ",")
	any := false
	for _, r := range runners {
		if *exp != "all" && !contains(selected, r.name) {
			continue
		}
		any = true
		start := time.Now()
		r.run(opts, os.Stdout)
		fmt.Printf("  [%s: %s in %v]\n\n", r.name, r.desc, time.Since(start).Round(time.Millisecond))
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s\n", *exp, names())
		os.Exit(2)
	}
}

// runJSON produces one benchmark trajectory snapshot and optionally
// gates it against a committed baseline.
func runJSON(seed uint64, short bool, out, compare string) int {
	date := time.Now().Format("2006-01-02")
	rep := experiment.RunBench(experiment.BenchOpts{
		Seed:  seed,
		Short: short,
		Date:  date,
		Now:   func() int64 { return time.Now().UnixNano() },
	})
	b, err := experiment.EncodeBenchReport(rep)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbo-bench: encode: %v\n", err)
		return 1
	}
	if out == "-" {
		os.Stdout.Write(b)
	} else {
		if out == "" {
			out = "BENCH_" + date + ".json"
		}
		if err := os.WriteFile(out, b, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dbo-bench: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", out)
		fmt.Printf("  pipeline:  %11.0f trades/s  %7.1f ns/op  %5.2f allocs/op\n",
			rep.Pipeline.TradesPerSec, rep.Pipeline.NsPerOp, rep.Pipeline.AllocsPerOp)
		fmt.Printf("  legacy:    %11.0f trades/s  %7.1f ns/op  %5.2f allocs/op  (speedup %.2fx)\n",
			rep.PipelineLegacy.TradesPerSec, rep.PipelineLegacy.NsPerOp,
			rep.PipelineLegacy.AllocsPerOp, rep.PipelineSpeedup)
		fmt.Printf("  sim:       %11.0f trades/s  (%d trades, %d simulated ms)\n",
			rep.Sim.TradesPerSec, rep.Sim.Trades, int64(rep.Sim.Duration/sim.Millisecond))
		fmt.Printf("  wire:      %8.1f enc MB/s  %8.1f dec MB/s  %5.2f allocs/op\n",
			rep.Wire.EncodeMBPerSec, rep.Wire.DecodeMBPerSec, rep.Wire.AllocsPerOp)
	}
	if compare != "" {
		raw, err := os.ReadFile(compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dbo-bench: %v\n", err)
			return 1
		}
		base, err := experiment.ParseBenchReport(raw)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dbo-bench: baseline: %v\n", err)
			return 1
		}
		if regs := experiment.CompareBenchReports(base, rep, 0.20); len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", r)
			}
			return 1
		}
		fmt.Printf("no regression vs %s\n", compare)
	}
	return 0
}

func names() string {
	out := make([]string, len(runners))
	for i, r := range runners {
		out[i] = r.name
	}
	return strings.Join(out, "|")
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
