// Command dbo-bench regenerates the paper's tables and figures (and the
// DESIGN.md ablations) and prints them in the paper's row format.
//
// Usage:
//
//	dbo-bench [-exp all|table2|table3|table4|fig2|fig7|fig10|fig11|fig12|fig13|tau|kappa|straggler|shards]
//	          [-seed N] [-ms simulated-milliseconds]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dbo/internal/experiment"
	"dbo/internal/sim"
)

type runner struct {
	name string
	desc string
	run  func(experiment.Opts, io.Writer)
}

var runners = []runner{
	{"table2", "bare-metal fairness & latency", func(o experiment.Opts, w io.Writer) { experiment.Table2(o).Render(w) }},
	{"table3", "cloud fairness & latency", func(o experiment.Opts, w io.Writer) { experiment.Table3(o).Render(w) }},
	{"table4", "fairness for RT > δ", func(o experiment.Opts, w io.Writer) { experiment.Table4(o).Render(w) }},
	{"fig2", "CloudEx spike timeline", func(o experiment.Opts, w io.Writer) { experiment.Figure2(o).Render(w) }},
	{"fig7", "batching+pacing drain", func(o experiment.Opts, w io.Writer) { experiment.Figure7(o).Render(w) }},
	{"fig10", "latency CDFs per DBO config", func(o experiment.Opts, w io.Writer) { experiment.Figure10(o).Render(w) }},
	{"fig11", "network trace", func(o experiment.Opts, w io.Writer) { experiment.Figure11(o).Render(w) }},
	{"fig12", "latency vs #participants", func(o experiment.Opts, w io.Writer) { experiment.Figure12(o).Render(w) }},
	{"fig13", "CloudEx vs DBO frontier", func(o experiment.Opts, w io.Writer) { experiment.Figure13(o).Render(w) }},
	{"tau", "ablation: heartbeat period", func(o experiment.Opts, w io.Writer) { experiment.AblationTau(o).Render(w) }},
	{"kappa", "ablation: pacing gain", func(o experiment.Opts, w io.Writer) { experiment.AblationKappa(o).Render(w) }},
	{"straggler", "ablation: straggler mitigation", func(o experiment.Opts, w io.Writer) { experiment.AblationStraggler(o).Render(w) }},
	{"shards", "ablation: OB sharding", func(o experiment.Opts, w io.Writer) { experiment.AblationShards(o).Render(w) }},
	{"sync", "extension: sync-assisted slow trades", func(o experiment.Opts, w io.Writer) { experiment.AblationSync(o).Render(w) }},
	{"external", "extension: external data streams", func(o experiment.Opts, w io.Writer) { experiment.ExternalStreams(o).Render(w) }},
	{"pnl", "extension: who wins the races", func(o experiment.Opts, w io.Writer) { experiment.SpeedPnL(o).Render(w) }},
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (or 'all'); one of: "+names())
	seed := flag.Uint64("seed", 1, "deterministic seed")
	ms := flag.Int64("ms", 0, "override simulated duration in milliseconds (0 = experiment default)")
	flag.Parse()

	opts := experiment.Opts{Seed: *seed, Duration: sim.Time(*ms) * sim.Millisecond}
	selected := strings.Split(*exp, ",")
	any := false
	for _, r := range runners {
		if *exp != "all" && !contains(selected, r.name) {
			continue
		}
		any = true
		start := time.Now()
		r.run(opts, os.Stdout)
		fmt.Printf("  [%s: %s in %v]\n\n", r.name, r.desc, time.Since(start).Round(time.Millisecond))
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s\n", *exp, names())
		os.Exit(2)
	}
}

func names() string {
	out := make([]string, len(runners))
	for i, r := range runners {
		out[i] = r.name
	}
	return strings.Join(out, "|")
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
