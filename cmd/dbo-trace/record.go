package main

import (
	"fmt"
	"net"
	"os"
	"time"

	"dbo"
	"dbo/internal/sim"
	"dbo/internal/trace"
	"dbo/internal/transport"
	"dbo/internal/wire"
)

// recordLoopback runs a live TWAMP-light session against a loopback UDP
// reflector for ms milliseconds and returns the captured RTT trace.
// This is the real capture pipeline end to end — prober, wire encoding,
// a kernel round trip, reflector stamps, capture regularization — just
// pointed at 127.0.0.1, so the numbers are loopback-sized. Against a
// remote reflector only the dial address would change.
func recordLoopback(ms int64, step time.Duration) (*trace.Trace, error) {
	if step <= 0 {
		step = time.Millisecond
	}
	refl, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	defer refl.Close()

	// The reflector: stamp receive (T2) and transmit (T3) on its own
	// clock, echo the reply. It dies with the socket.
	reflStart := time.Now()
	go func() {
		buf := make([]byte, 2048)
		var m wire.Msg
		for {
			n, addr, err := refl.ReadFromUDP(buf)
			if err != nil {
				return
			}
			t2 := sim.Time(time.Since(reflStart))
			if wire.DecodeInto(&m, buf[:n]) != nil || m.Type != wire.TProbe {
				continue
			}
			t3 := sim.Time(time.Since(reflStart))
			out := wire.AppendProbeReply(nil, transport.Reflect(m.Probe, t2, t3))
			if _, err := refl.WriteToUDP(out, addr); err != nil {
				return
			}
		}
	}()

	conn, err := net.DialUDP("udp", nil, refl.LocalAddr().(*net.UDPAddr))
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	pr := transport.NewProber(1, 0)
	pr.EnableCapture(sim.FromDuration(step))
	start := time.Now()
	deadline := start.Add(time.Duration(ms) * time.Millisecond)
	buf := make([]byte, 2048)
	var m wire.Msg
	sent, got := 0, 0
	for time.Now().Before(deadline) {
		t1 := sim.Time(time.Since(start))
		out := wire.AppendProbe(nil, pr.Next(t1))
		if _, err := conn.Write(out); err != nil {
			return nil, err
		}
		sent++
		_ = conn.SetReadDeadline(time.Now().Add(step))
		n, err := conn.Read(buf)
		if err == nil && wire.DecodeInto(&m, buf[:n]) == nil && m.Type == wire.TProbeReply {
			if rtt := pr.Observe(m.ProbeReply, sim.Time(time.Since(start))); rtt >= 0 {
				got++
			}
		}
		time.Sleep(step)
	}
	tr := pr.Trace()
	if tr == nil {
		return nil, fmt.Errorf("record: no valid probe replies (%d probes sent)", sent)
	}
	fmt.Fprintf(os.Stderr, "recorded %d RTTs from %d probes over %dms (step %v)\n", got, sent, ms, step)
	return tr, nil
}

// replayTrace drives a short DBO simulation with a captured trace as
// its network, closing the capture→replay loop.
func replayTrace(path string, seed uint64, n int, ms int64) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	tr, err := trace.ReadCSV(f)
	f.Close()
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	describe(tr)
	r := dbo.Simulate(dbo.SimConfig{
		Scheme:   dbo.DBO,
		Seed:     seed,
		N:        n,
		Duration: dbo.Time(ms) * dbo.Millisecond,
		Trace:    tr,
	})
	fmt.Printf("replay      %s as network for scheme %s (%d MPs, seed %d, %dms)\n", path, r.Scheme, n, seed, ms)
	fmt.Printf("fairness    %.4f (%d/%d competing pairs)\n", r.Fairness, r.FairRatio.Correct, r.FairRatio.Total)
	fmt.Printf("latency     %s\n", r.Latency)
}
