// Command dbo-trace generates, summarizes, captures, and replays the
// network RTT traces that drive the simulations.
//
//	dbo-trace -env cloud -seed 1 -ms 2000 -o trace.csv   # generate
//	dbo-trace -summarize trace.csv                        # inspect
//	dbo-trace -record -ms 200 -o live.csv                 # capture (loopback TWAMP)
//	dbo-trace -replay live.csv -seed 7                    # drive a sim with it
//
// -record runs a real TWAMP-light session over a loopback UDP socket —
// transport.Prober mints probes, a reflector echoes them, and every
// valid RTT persists through the capture pipeline into a replayable
// CSV. -replay closes the loop: the measured distribution drives a DBO
// simulation on the same footing as the synthetic generators.
package main

import (
	"flag"
	"fmt"
	"os"

	"dbo/internal/sim"
	"dbo/internal/stats"
	"dbo/internal/trace"
)

func main() {
	env := flag.String("env", "cloud", "cloud|lab preset")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	ms := flag.Int64("ms", 2000, "trace length in milliseconds")
	out := flag.String("o", "", "write CSV to this file (default stdout)")
	summarize := flag.String("summarize", "", "read a CSV trace and print statistics instead of generating")
	record := flag.Bool("record", false, "capture a live RTT trace over loopback UDP instead of generating")
	step := flag.Duration("step", 0, "capture grid step for -record (default 1ms)")
	replay := flag.String("replay", "", "read a CSV trace and drive a short DBO simulation with it")
	n := flag.Int("n", 4, "participants for -replay")
	flag.Parse()

	if *record {
		tr, err := recordLoopback(*ms, *step)
		if err != nil {
			fatal(err)
		}
		writeTrace(tr, *out)
		return
	}
	if *replay != "" {
		replayTrace(*replay, *seed, *n, *ms)
		return
	}

	if *summarize != "" {
		f, err := os.Open(*summarize)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := trace.ReadCSV(f)
		if err != nil {
			fatal(err)
		}
		describe(tr)
		return
	}

	var g trace.Generator
	switch *env {
	case "cloud":
		g = trace.Cloud(*seed)
	case "lab":
		g = trace.Lab(*seed)
	default:
		fatal(fmt.Errorf("unknown env %q", *env))
	}
	g.Length = sim.Time(*ms) * sim.Millisecond
	tr := g.Generate()
	writeTrace(tr, *out)
}

func writeTrace(tr *trace.Trace, out string) {
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteCSV(w); err != nil {
		fatal(err)
	}
	if out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d samples to %s\n", len(tr.RTT), out)
		describe(tr)
	}
}

func describe(tr *trace.Trace) {
	s := tr.Summarize()
	fmt.Fprintf(os.Stderr, "duration %.0fms, step %v\n",
		float64(tr.Duration())/float64(sim.Millisecond), tr.Step)
	fmt.Fprintf(os.Stderr, "RTT mean %.1fµs p50 %.1fµs p99 %.1fµs p999 %.1fµs max %.1fµs\n",
		s.Mean.Micros(), s.P50.Micros(), s.P99.Micros(), s.P999.Micros(), s.Max.Micros())
	h := stats.NewHistogram(0, tr.Duration(), 72)
	for i, v := range tr.RTT {
		at := sim.Time(i) * tr.Step
		for k := sim.Time(0); k < v; k += 20 * sim.Microsecond {
			h.Add(at)
		}
	}
	fmt.Fprintf(os.Stderr, "rtt/time %s\n", h.Sparkline())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
