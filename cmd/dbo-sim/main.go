// Command dbo-sim runs one configurable simulation and prints its
// fairness/latency outcome.
//
// Example:
//
//	dbo-sim -scheme dbo -n 10 -ms 200 -delta 20 -kappa 0.25 -tau 20
//	dbo-sim -scheme cloudex -c1 60 -c2 60
//	dbo-sim -scheme direct -env lab -n 2
//	dbo-sim -chaos latency-attack
//	dbo-sim -chaos list
//
// Observability extras:
//
//	-flight-dir d    per-node traces (d/ces.ndjson, d/mp1.ndjson, ...)
//	                 for dbo-flight -merge
//	-audit           run the live fairness auditor alongside the sim
//	-audit-expect X  CI gate: exit non-zero unless the auditor saw what
//	                 X says ("clean" or "violations")
//	-trace f.csv     replay a captured RTT trace (dbo-trace -record)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"dbo"
	"dbo/internal/audit"
	"dbo/internal/check"
	"dbo/internal/flight"
	"dbo/internal/market"
	"dbo/internal/trace"
)

func main() {
	scheme := flag.String("scheme", "dbo", "direct|dbo|cloudex|fba|libra")
	env := flag.String("env", "cloud", "cloud|lab network trace")
	n := flag.Int("n", 10, "number of market participants")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	ms := flag.Int64("ms", 200, "simulated duration in milliseconds")
	delta := flag.Int64("delta", 20, "DBO δ in µs")
	kappa := flag.Float64("kappa", 0.25, "DBO pacing gain κ")
	tau := flag.Int64("tau", 20, "DBO heartbeat period τ in µs")
	straggler := flag.Int64("straggler", 0, "straggler RTT threshold in µs (0 = off)")
	shards := flag.Int("shards", 1, "ordering buffer shards")
	c1 := flag.Int64("c1", 60, "CloudEx one-way data threshold in µs")
	c2 := flag.Int64("c2", 60, "CloudEx one-way trade threshold in µs")
	loss := flag.Float64("loss", 0, "i.i.d. packet loss rate")
	drift := flag.Bool("drift", false, "give RBs drifting unsynchronized clocks")
	rtmin := flag.Int64("rtmin", 5, "min response time in µs")
	rtmax := flag.Int64("rtmax", 20, "max response time in µs")
	flightOut := flag.String("flight", "", "write a flight-recorder NDJSON trace here (dbo scheme)")
	flightBuf := flag.Int("flight-buf", 0, "flight recorder ring capacity (0 = default)")
	flightDir := flag.String("flight-dir", "", "write one NDJSON trace per node into this directory (ces.ndjson, mp<i>.ndjson) for dbo-flight -merge")
	auditOn := flag.Bool("audit", false, "run the live fairness auditor alongside the sim")
	auditExpect := flag.String("audit-expect", "", "exit non-zero unless the auditor outcome matches: clean|violations (implies -audit)")
	traceFile := flag.String("trace", "", "replay a captured RTT trace (CSV from dbo-trace -record) instead of the synthetic -env trace")
	chaos := flag.String("chaos", "", "run a named hostile-network scenario from the chaos library ('list' to enumerate); overrides the workload flags")
	flag.Parse()

	opts := obsOpts{
		flightOut: *flightOut, flightBuf: *flightBuf, flightDir: *flightDir,
		audit: *auditOn || *auditExpect != "", expect: *auditExpect,
		traceFile: *traceFile,
	}
	if opts.expect != "" && opts.expect != "clean" && opts.expect != "violations" {
		fmt.Fprintf(os.Stderr, "bad -audit-expect %q (want clean or violations)\n", opts.expect)
		os.Exit(2)
	}

	if *chaos != "" {
		runChaos(*chaos, opts)
		return
	}

	var sch dbo.Scheme
	switch *scheme {
	case "direct":
		sch = dbo.Direct
	case "dbo":
		sch = dbo.DBO
	case "cloudex":
		sch = dbo.CloudEx
	case "fba":
		sch = dbo.FBA
	case "libra":
		sch = dbo.Libra
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
		os.Exit(2)
	}
	cfg := dbo.SimConfig{
		Scheme:       sch,
		Seed:         *seed,
		N:            *n,
		Duration:     dbo.Time(*ms) * dbo.Millisecond,
		Delta:        dbo.Time(*delta) * dbo.Microsecond,
		Kappa:        *kappa,
		Tau:          dbo.Time(*tau) * dbo.Microsecond,
		StragglerRTT: dbo.Time(*straggler) * dbo.Microsecond,
		OBShards:     *shards,
		C1:           dbo.Time(*c1) * dbo.Microsecond,
		C2:           dbo.Time(*c2) * dbo.Microsecond,
		LossRate:     *loss,
		ClockDrift:   *drift,
		RTMin:        dbo.Time(*rtmin) * dbo.Microsecond,
		RTMax:        dbo.Time(*rtmax) * dbo.Microsecond,
	}
	if *env == "lab" {
		cfg.Trace = dbo.LabTrace(*seed)
		cfg.Skew = dbo.DefaultSkew(*n, 0.14)
	}
	ob := setupObs(&cfg, opts)
	r := dbo.Simulate(cfg)
	ob.finish()
	report(r, *n, *seed, *ms)
	ob.gate()
}

// obsOpts carries the observability flags shared by the workload and
// chaos paths.
type obsOpts struct {
	flightOut string
	flightBuf int
	flightDir string
	audit     bool
	expect    string // "", "clean", "violations"
	traceFile string
}

// obsState is the live observability plane attached to one run.
type obsState struct {
	opts      obsOpts
	rec       *dbo.FlightRecorder                   // single shared recorder (-flight)
	perNode   map[market.NodeID]*dbo.FlightRecorder // per-node recorders (-flight-dir)
	auditor   *audit.Auditor
	callbacks int // OnViolation invocations (live detection)
}

// setupObs wires recorders, the auditor, and a replayed RTT trace into
// cfg according to opts.
func setupObs(cfg *dbo.SimConfig, opts obsOpts) *obsState {
	ob := &obsState{opts: opts}
	if opts.traceFile != "" {
		f, err := os.Open(opts.traceFile)
		if err != nil {
			fatal(err)
		}
		tr, err := trace.ReadCSV(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", opts.traceFile, err))
		}
		cfg.Trace = tr
	}
	if opts.flightOut != "" {
		ob.rec = dbo.NewFlightRecorder(opts.flightBuf)
		cfg.Flight = ob.rec
	}
	if opts.flightDir != "" {
		if err := os.MkdirAll(opts.flightDir, 0o755); err != nil {
			fatal(err)
		}
		ob.perNode = make(map[market.NodeID]*dbo.FlightRecorder)
		cfg.FlightFor = func(node market.NodeID) *dbo.FlightRecorder {
			r, ok := ob.perNode[node]
			if !ok {
				r = dbo.NewFlightRecorder(opts.flightBuf)
				ob.perNode[node] = r
			}
			return r
		}
	}
	if opts.audit {
		ob.auditor = audit.New(audit.Config{
			Delta:       cfg.Delta,
			OnViolation: func(audit.Violation) { ob.callbacks++ },
		})
		cfg.Auditor = ob.auditor
	}
	return ob
}

// finish writes trace files and prints the audit summary.
func (ob *obsState) finish() {
	if ob.rec != nil {
		writeFlight(ob.rec, ob.opts.flightOut)
	}
	if ob.perNode != nil {
		nodes := make([]market.NodeID, 0, len(ob.perNode))
		for n := range ob.perNode {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		for _, n := range nodes {
			name := "ces.ndjson"
			if n != market.NodeCES {
				name = fmt.Sprintf("mp%d.ndjson", n-1)
			}
			writeFlight(ob.perNode[n], filepath.Join(ob.opts.flightDir, name))
		}
	}
	if ob.auditor != nil {
		s := ob.auditor.Stats()
		fmt.Printf("audit       fairness %.4f (%d/%d pairs), %d pacing, %d atomicity, %d callbacks\n",
			s.Fairness, s.Pairs-s.UnfairPairs, s.Pairs, s.PacingViolations, s.AtomicityBreaks, ob.callbacks)
	}
}

// gate enforces -audit-expect after the report is printed.
func (ob *obsState) gate() {
	if ob.auditor == nil || ob.opts.expect == "" {
		return
	}
	v := ob.auditor.Stats().Violations()
	switch ob.opts.expect {
	case "clean":
		if v != 0 || ob.callbacks != 0 {
			fatal(fmt.Errorf("audit-expect clean: auditor saw %d violations (%d callbacks)", v, ob.callbacks))
		}
	case "violations":
		if v == 0 || ob.callbacks == 0 {
			fatal(fmt.Errorf("audit-expect violations: auditor saw none live (%d recorded, %d callbacks)", v, ob.callbacks))
		}
	}
}

// runChaos replays one hand-built hostile-network scenario from the
// conformance chaos library; the scenario fixes the whole deployment,
// so the workload flags are ignored (observability flags still apply —
// -audit-expect violations is how CI asserts the auditor detects an
// attack live).
func runChaos(name string, opts obsOpts) {
	if name == "list" {
		for _, s := range check.Chaos() {
			fmt.Printf("%-16s %s\n", s.Name, s)
		}
		return
	}
	s, ok := check.ChaosByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown chaos scenario %q (try -chaos list)\n", name)
		os.Exit(2)
	}
	cfg := s.Config()
	opts.traceFile = "" // the scenario owns its network
	ob := setupObs(&cfg, opts)
	fmt.Printf("chaos       %s\n", s)
	r := dbo.Simulate(cfg)
	ob.finish()
	report(r, s.N, s.Seed, int64(s.Duration/dbo.Millisecond))
	ob.gate()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func writeFlight(rec *dbo.FlightRecorder, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	events := rec.Snapshot()
	if err := flight.Write(f, events); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("flight      %d events to %s (%d dropped by the ring)\n",
		len(events), path, rec.Dropped())
}

func report(r *dbo.SimResult, n int, seed uint64, ms int64) {
	fmt.Printf("scheme      %s (%d MPs, seed %d, %dms)\n", r.Scheme, n, seed, ms)
	fmt.Printf("fairness    %.4f (%d/%d competing pairs)\n", r.Fairness, r.FairRatio.Correct, r.FairRatio.Total)
	fmt.Printf("latency     %s\n", r.Latency)
	fmt.Printf("max-rtt     %s (Theorem 3 bound)\n", r.MaxRTT)
	fmt.Printf("trades      %d scored over %d races; %d lost; %d data points\n", r.Trades, r.Races, r.Lost, r.DataPoints)
	fmt.Printf("executions  %d fills\n", r.Executions)
	if r.StragglerEvents > 0 {
		fmt.Printf("stragglers  %d mitigation events\n", r.StragglerEvents)
	}
	if r.CloudExOverruns > 0 {
		fmt.Printf("overruns    %d CloudEx threshold overruns\n", r.CloudExOverruns)
	}
	if r.DroppedPackets > 0 {
		fmt.Printf("loss        %d packets dropped, %d retransmission requests\n", r.DroppedPackets, r.RetxRequests)
	}
	if r.DupPackets > 0 || r.ReorderedPackets > 0 || r.WindowDrops > 0 {
		fmt.Printf("faults      %d duplicated, %d reordered, %d partition-dropped packets\n",
			r.DupPackets, r.ReorderedPackets, r.WindowDrops)
	}
	if len(r.Violations) > 0 {
		fmt.Printf("violations  (first %d)\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Printf("  race %d: MP%d (RT %v) behind MP%d (RT %v)\n",
				v.Trigger, v.Faster.MP, v.Faster.RT, v.Slower.MP, v.Slower.RT)
		}
	}
}
