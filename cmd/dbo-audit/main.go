// Command dbo-audit produces and verifies exchange audit logs.
//
//	dbo-audit -record log.bin -ms 100        # simulate a DBO run, record it
//	dbo-audit -verify log.bin                 # independently verify a log
package main

import (
	"flag"
	"fmt"
	"os"

	"dbo"
	"dbo/internal/exchange"
	"dbo/internal/replay"
	"dbo/internal/sim"
)

func main() {
	record := flag.String("record", "", "run a DBO simulation and write its audit log here")
	verify := flag.String("verify", "", "verify an audit log")
	seed := flag.Uint64("seed", 1, "simulation seed (with -record)")
	ms := flag.Int64("ms", 100, "simulated milliseconds (with -record)")
	n := flag.Int("n", 5, "participants (with -record)")
	flag.Parse()

	switch {
	case *record != "":
		f, err := os.Create(*record)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r := exchange.Run(exchange.Config{
			Scheme:   exchange.DBO,
			Seed:     *seed,
			N:        *n,
			Duration: sim.Time(*ms) * dbo.Millisecond,
			Audit:    f,
		})
		fmt.Printf("recorded %d data points, %d trades (fairness %.4f) to %s\n",
			r.DataPoints, r.Trades, r.Fairness, *record)
	case *verify != "":
		f, err := os.Open(*verify)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		rep, err := replay.Verify(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "VERIFICATION FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("log verified: %d generations, %d receives, %d forwards, %d unforwarded\n",
			rep.Gens, rep.Recvs, rep.Forwards, rep.Unforwarded)
		fmt.Println("invariants held: delivery-clock order, no fabrication, no duplication, no tag tampering, monotone participant clocks")
	default:
		fmt.Fprintln(os.Stderr, "pass -record <file> or -verify <file>")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
