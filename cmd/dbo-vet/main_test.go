package main

import (
	"runtime"
	"strings"
	"testing"
)

// defaults mirrors the flag defaults run() registers.
func defaults() options {
	return options{format: "text", mode: "typed", workers: runtime.NumCPU()}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*options)
		want string // substring of the error, "" for valid
	}{
		{"defaults", func(o *options) {}, ""},
		{"syntactic", func(o *options) { o.mode = "syntactic" }, ""},
		{"cache-typed", func(o *options) { o.cache = true }, ""},
		{"zero-workers", func(o *options) { o.workers = 0 }, "-workers must be positive"},
		{"negative-workers", func(o *options) { o.workers = -4 }, "-workers must be positive"},
		{"negative-depth", func(o *options) { o.depth = -1 }, "-depth must be >= 0"},
		{"bad-mode", func(o *options) { o.mode = "turbo" }, `unknown -mode "turbo"`},
		{"bad-format", func(o *options) { o.format = "xml" }, `unknown -format "xml"`},
		{"cache-syntactic", func(o *options) { o.mode = "syntactic"; o.cache = true }, "-cache requires -mode=typed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := defaults()
			tc.mut(&o)
			got := validateFlags(o)
			if tc.want == "" {
				if got != "" {
					t.Fatalf("validateFlags(%+v) = %q, want no error", o, got)
				}
				return
			}
			if !strings.Contains(got, tc.want) {
				t.Fatalf("validateFlags(%+v) = %q, want it to mention %q", o, got, tc.want)
			}
		})
	}
}

// The first failing check must win: a fully broken options struct still
// produces the workers message, so scripts see a stable diagnostic.
func TestValidateFlagsOrder(t *testing.T) {
	o := options{workers: 0, depth: -1, mode: "nope", format: "nope"}
	if got := validateFlags(o); !strings.Contains(got, "-workers") {
		t.Fatalf("validateFlags = %q, want the workers error first", got)
	}
}
