// Command dbo-vet runs the repository's custom analyzer suite
// (internal/analysis) over the module and reports every violation of
// DBO's determinism, lock-discipline and clock-ordering invariants as
//
//	file:line:col: [rule] message
//
// exiting 1 when there are findings and 2 when the tree cannot be
// loaded. Rules: walltime, lockheld, clockcmp, goexit, naketime —
// `dbo-vet -rules` describes them. A deliberate exception is annotated
// in place with `//dbo:vet-ignore <rule> <reason>`; unused or malformed
// directives are findings themselves.
//
// Usage:
//
//	go run ./cmd/dbo-vet ./...
//	go run ./cmd/dbo-vet ./internal/core ./internal/gateway
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dbo/internal/analysis"
)

func main() {
	describe := flag.Bool("rules", false, "describe the analyzer rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dbo-vet [-rules] [packages]\n\npackages default to ./... (the whole module)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *describe {
		for _, a := range analysis.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := analysis.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbo-vet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.LoadModule(root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbo-vet:", err)
		os.Exit(2)
	}

	cfg := analysis.Default()
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, analysis.RunPackage(pkg, cfg)...)
	}
	analysis.SortDiagnostics(diags)

	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", name, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dbo-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
