// Command dbo-vet runs the repository's custom analyzer suite
// (internal/analysis) over the module and reports every violation of
// DBO's determinism, lock-discipline, clock-ordering, pool-ownership
// and zero-allocation invariants, exiting 1 when there are findings
// and 2 when the tree cannot be loaded.
//
// By default the module is type-checked (stdlib go/types — no external
// tooling) and the analyzers run with resolved types and a static call
// graph: lockheld chases calls made under a lock through the call graph
// to transitive blocking operations, clockcmp/walltime match by type
// identity instead of name heuristics, and the type-aware-only rules
// (atomicmix, errdrop, sendliveness, poolowner, allocfree, lockorder)
// come alive — the last three on the flow-sensitive CFG/dataflow
// engine. Packages that fail to compile degrade per-file to the
// syntactic rules; `-mode=syntactic` forces that everywhere.
//
// Rules: walltime, lockheld, clockcmp, goexit, naketime, errdrop,
// sendliveness, poolowner, atomicmix, allocfree, lockorder —
// `dbo-vet -describe` describes them; `-rules=a,b` runs a subset. A
// deliberate exception is annotated in place with
// `//dbo:vet-ignore <rule> <reason>` (strictly line-scoped); unused or
// malformed directives are findings themselves. `-baseline=<file>`
// additionally suppresses the findings frozen in a JSON snapshot
// (the `-format=json` output) so a new rule can gate incrementally.
//
// Usage:
//
//	go run ./cmd/dbo-vet ./...
//	go run ./cmd/dbo-vet -format=sarif ./... > dbo-vet.sarif
//	go run ./cmd/dbo-vet -rules=poolowner,allocfree,lockorder ./internal/core
//	go run ./cmd/dbo-vet -baseline=vet-baseline.json ./...
//	go run ./cmd/dbo-vet -mode=syntactic ./internal/core
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"dbo/internal/analysis"
)

func main() {
	os.Exit(run())
}

// options carries every flag, so validation is unit-testable apart from
// flag.Parse and os.Exit.
type options struct {
	describe bool
	ignores  bool
	cache    bool
	rules    string
	baseline string
	format   string
	mode     string
	depth    int
	workers  int
}

// validateFlags rejects flag combinations the analyzers would silently
// misbehave under. Returns "" when the options are usable.
func validateFlags(o options) string {
	if o.workers <= 0 {
		return fmt.Sprintf("-workers must be positive (got %d)", o.workers)
	}
	if o.depth < 0 {
		return fmt.Sprintf("-depth must be >= 0 (got %d)", o.depth)
	}
	if o.mode != "typed" && o.mode != "syntactic" {
		return fmt.Sprintf("unknown -mode %q (want typed or syntactic)", o.mode)
	}
	if o.format != "text" && o.format != "json" && o.format != "sarif" {
		return fmt.Sprintf("unknown -format %q (want text, json, or sarif)", o.format)
	}
	if o.cache && o.mode != "typed" {
		return "-cache requires -mode=typed (the cache keys type-aware runs)"
	}
	return ""
}

func run() int {
	var o options
	flag.BoolVar(&o.describe, "describe", false, "describe the analyzer rules and exit")
	flag.BoolVar(&o.ignores, "ignores", false, "list every //dbo:vet-ignore directive with rule, reason and age, then exit")
	flag.BoolVar(&o.cache, "cache", false, "incremental mode: reuse .dbovet-cache/ results keyed by content hashes")
	flag.StringVar(&o.rules, "rules", "", "comma-separated rule subset to run (default: all rules)")
	flag.StringVar(&o.baseline, "baseline", "", "JSON baseline file of findings to suppress (see -format=json)")
	flag.StringVar(&o.format, "format", "text", "output format: text, json, or sarif")
	flag.StringVar(&o.mode, "mode", "typed", "analysis mode: typed (type-aware + call graph) or syntactic")
	flag.IntVar(&o.depth, "depth", 0, "lockheld call-graph depth bound (0 = default)")
	flag.IntVar(&o.workers, "workers", runtime.NumCPU(), "parallel package analyses")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dbo-vet [-describe] [-ignores] [-cache] [-rules=a,b] [-baseline=file] [-format=text|json|sarif] [-mode=typed|syntactic] [-depth=N] [packages]\n\npackages default to ./... (the whole module)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if msg := validateFlags(o); msg != "" {
		fmt.Fprintln(os.Stderr, "dbo-vet:", msg)
		flag.Usage()
		return 2
	}

	describe, rules, baseline := &o.describe, &o.rules, &o.baseline
	format, mode, depth, workers := &o.format, &o.mode, &o.depth, &o.workers

	if *describe {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		for _, a := range analysis.AllModule() {
			fmt.Printf("%-12s %s (module-level, type-aware mode only)\n", a.Name, a.Doc)
		}
		return 0
	}

	cfg := analysis.Default()
	cfg.LockHeldDepth = *depth
	if *rules != "" {
		valid := analysis.RuleNames()
		for _, r := range strings.Split(*rules, ",") {
			r = strings.TrimSpace(r)
			if r == "" {
				continue
			}
			if !valid[r] {
				var known []string
				for name := range valid {
					known = append(known, name)
				}
				sort.Strings(known)
				fmt.Fprintf(os.Stderr, "dbo-vet: unknown rule %q in -rules (known: %s)\n", r, strings.Join(known, ", "))
				return 2
			}
			cfg.EnabledRules = append(cfg.EnabledRules, r)
		}
	}

	root, err := analysis.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbo-vet:", err)
		return 2
	}

	if o.ignores {
		return listIgnores(root, flag.Args())
	}

	var diags []analysis.Diagnostic
	switch *mode {
	case "typed":
		var cacheKey string
		var pkgDigests map[string]string
		if o.cache {
			cacheKey, pkgDigests, err = analysis.CacheKey(root, *mode, flag.Args(), cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dbo-vet:", err)
				return 2
			}
			if e := analysis.LoadCacheEntry(root, cacheKey); e != nil {
				diags = e.FinalDiagnostics(root)
				break
			}
		}
		mod, err := analysis.LoadModuleTyped(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbo-vet:", err)
			return 2
		}
		if o.cache {
			var entry *analysis.CacheEntry
			diags, entry = mod.RunCached(cfg, flag.Args(), *workers, pkgDigests, analysis.LatestCacheEntry(root))
			entry.Key = cacheKey
			if err := analysis.StoreCacheEntry(root, entry); err != nil {
				// A write failure only costs the next run its warm start.
				fmt.Fprintln(os.Stderr, "dbo-vet: cache write failed:", err)
			}
		} else {
			diags = mod.Run(cfg, flag.Args(), *workers)
		}
	case "syntactic":
		pkgs, err := analysis.LoadModule(root, flag.Args())
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbo-vet:", err)
			return 2
		}
		for _, pkg := range pkgs {
			diags = append(diags, analysis.RunPackage(pkg, cfg)...)
		}
		analysis.SortDiagnostics(diags)
	}

	if *baseline != "" {
		entries, err := analysis.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbo-vet:", err)
			return 2
		}
		var suppressed, stale int
		diags, suppressed, stale = analysis.ApplyBaseline(diags, entries, root)
		if suppressed > 0 || stale > 0 {
			fmt.Fprintf(os.Stderr, "dbo-vet: baseline suppressed %d finding(s); %d stale entr(y/ies) — shrink the baseline as findings are fixed\n", suppressed, stale)
		}
	}

	// Text output is rendered relative to the working directory so the
	// lines are clickable in an editor; json/sarif are rendered relative
	// to the module root so CI artifacts are machine-independent.
	var ferr error
	switch *format {
	case "text":
		base, _ := os.Getwd()
		ferr = analysis.FormatText(os.Stdout, diags, base)
	case "json":
		ferr = analysis.FormatJSON(os.Stdout, diags, root)
	case "sarif":
		ferr = analysis.FormatSARIF(os.Stdout, diags, root)
	default:
		fmt.Fprintf(os.Stderr, "dbo-vet: unknown -format %q (want text, json, or sarif)\n", *format)
		return 2
	}
	if ferr != nil {
		fmt.Fprintln(os.Stderr, "dbo-vet:", ferr)
		return 2
	}

	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dbo-vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// listIgnores is the -ignores audit mode: every //dbo:vet-ignore in the
// selected packages with its rule, age (from git blame, "?" when
// unavailable) and reason. Exit 0 regardless — the mode is an
// inventory, not a gate.
func listIgnores(root string, patterns []string) int {
	pkgs, err := analysis.LoadModule(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbo-vet:", err)
		return 2
	}
	entries := analysis.ListIgnores(pkgs)
	if len(entries) == 0 {
		fmt.Println("no //dbo:vet-ignore directives")
		return 0
	}
	base, _ := os.Getwd()
	for _, e := range entries {
		file := e.Pos.Filename
		if base != "" {
			if rel, err := filepath.Rel(base, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		rule := e.Rule
		if e.Bad != "" {
			rule = "MALFORMED"
		}
		reason := e.Reason
		if e.Bad != "" {
			reason = e.Bad
		}
		fmt.Printf("%s:%d: %-12s %-10s %s\n", file, e.Pos.Line, rule, ignoreAge(root, e.Pos.Filename, e.Pos.Line), reason)
	}
	fmt.Fprintf(os.Stderr, "dbo-vet: %d ignore directive(s)\n", len(entries))
	return 0
}

// ignoreAge asks git when the directive's line last changed ("2025-11-03"),
// returning "?" outside a repo or when git is missing.
func ignoreAge(root, file string, line int) string {
	rel, err := filepath.Rel(root, file)
	if err != nil {
		return "?"
	}
	cmd := exec.Command("git", "blame", "-L", fmt.Sprintf("%d,%d", line, line), "--porcelain", "--", rel)
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		return "?"
	}
	for _, l := range strings.Split(string(out), "\n") {
		if ts, ok := strings.CutPrefix(l, "committer-time "); ok {
			sec, err := strconv.ParseInt(strings.TrimSpace(ts), 10, 64)
			if err != nil {
				return "?"
			}
			return time.Unix(sec, 0).UTC().Format("2006-01-02")
		}
	}
	return "?"
}
