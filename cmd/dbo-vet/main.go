// Command dbo-vet runs the repository's custom analyzer suite
// (internal/analysis) over the module and reports every violation of
// DBO's determinism, lock-discipline, clock-ordering, pool-ownership
// and zero-allocation invariants, exiting 1 when there are findings
// and 2 when the tree cannot be loaded.
//
// By default the module is type-checked (stdlib go/types — no external
// tooling) and the analyzers run with resolved types and a static call
// graph: lockheld chases calls made under a lock through the call graph
// to transitive blocking operations, clockcmp/walltime match by type
// identity instead of name heuristics, and the type-aware-only rules
// (atomicmix, errdrop, sendliveness, poolowner, allocfree, lockorder)
// come alive — the last three on the flow-sensitive CFG/dataflow
// engine. Packages that fail to compile degrade per-file to the
// syntactic rules; `-mode=syntactic` forces that everywhere.
//
// Rules: walltime, lockheld, clockcmp, goexit, naketime, errdrop,
// sendliveness, poolowner, atomicmix, allocfree, lockorder —
// `dbo-vet -describe` describes them; `-rules=a,b` runs a subset. A
// deliberate exception is annotated in place with
// `//dbo:vet-ignore <rule> <reason>` (strictly line-scoped); unused or
// malformed directives are findings themselves. `-baseline=<file>`
// additionally suppresses the findings frozen in a JSON snapshot
// (the `-format=json` output) so a new rule can gate incrementally.
//
// Usage:
//
//	go run ./cmd/dbo-vet ./...
//	go run ./cmd/dbo-vet -format=sarif ./... > dbo-vet.sarif
//	go run ./cmd/dbo-vet -rules=poolowner,allocfree,lockorder ./internal/core
//	go run ./cmd/dbo-vet -baseline=vet-baseline.json ./...
//	go run ./cmd/dbo-vet -mode=syntactic ./internal/core
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"dbo/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	describe := flag.Bool("describe", false, "describe the analyzer rules and exit")
	rules := flag.String("rules", "", "comma-separated rule subset to run (default: all rules)")
	baseline := flag.String("baseline", "", "JSON baseline file of findings to suppress (see -format=json)")
	format := flag.String("format", "text", "output format: text, json, or sarif")
	mode := flag.String("mode", "typed", "analysis mode: typed (type-aware + call graph) or syntactic")
	depth := flag.Int("depth", 0, "lockheld call-graph depth bound (0 = default)")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel package analyses")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dbo-vet [-describe] [-rules=a,b] [-baseline=file] [-format=text|json|sarif] [-mode=typed|syntactic] [-depth=N] [packages]\n\npackages default to ./... (the whole module)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *describe {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		for _, a := range analysis.AllModule() {
			fmt.Printf("%-12s %s (module-level, type-aware mode only)\n", a.Name, a.Doc)
		}
		return 0
	}

	cfg := analysis.Default()
	cfg.LockHeldDepth = *depth
	if *rules != "" {
		valid := analysis.RuleNames()
		for _, r := range strings.Split(*rules, ",") {
			r = strings.TrimSpace(r)
			if r == "" {
				continue
			}
			if !valid[r] {
				var known []string
				for name := range valid {
					known = append(known, name)
				}
				sort.Strings(known)
				fmt.Fprintf(os.Stderr, "dbo-vet: unknown rule %q in -rules (known: %s)\n", r, strings.Join(known, ", "))
				return 2
			}
			cfg.EnabledRules = append(cfg.EnabledRules, r)
		}
	}

	root, err := analysis.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbo-vet:", err)
		return 2
	}

	var diags []analysis.Diagnostic
	switch *mode {
	case "typed":
		mod, err := analysis.LoadModuleTyped(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbo-vet:", err)
			return 2
		}
		diags = mod.Run(cfg, flag.Args(), *workers)
	case "syntactic":
		pkgs, err := analysis.LoadModule(root, flag.Args())
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbo-vet:", err)
			return 2
		}
		for _, pkg := range pkgs {
			diags = append(diags, analysis.RunPackage(pkg, cfg)...)
		}
		analysis.SortDiagnostics(diags)
	default:
		fmt.Fprintf(os.Stderr, "dbo-vet: unknown -mode %q (want typed or syntactic)\n", *mode)
		return 2
	}

	if *baseline != "" {
		entries, err := analysis.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbo-vet:", err)
			return 2
		}
		var suppressed, stale int
		diags, suppressed, stale = analysis.ApplyBaseline(diags, entries, root)
		if suppressed > 0 || stale > 0 {
			fmt.Fprintf(os.Stderr, "dbo-vet: baseline suppressed %d finding(s); %d stale entr(y/ies) — shrink the baseline as findings are fixed\n", suppressed, stale)
		}
	}

	// Text output is rendered relative to the working directory so the
	// lines are clickable in an editor; json/sarif are rendered relative
	// to the module root so CI artifacts are machine-independent.
	var ferr error
	switch *format {
	case "text":
		base, _ := os.Getwd()
		ferr = analysis.FormatText(os.Stdout, diags, base)
	case "json":
		ferr = analysis.FormatJSON(os.Stdout, diags, root)
	case "sarif":
		ferr = analysis.FormatSARIF(os.Stdout, diags, root)
	default:
		fmt.Fprintf(os.Stderr, "dbo-vet: unknown -format %q (want text, json, or sarif)\n", *format)
		return 2
	}
	if ferr != nil {
		fmt.Fprintln(os.Stderr, "dbo-vet:", ferr)
		return 2
	}

	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dbo-vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
