// Command dbo-vet runs the repository's custom analyzer suite
// (internal/analysis) over the module and reports every violation of
// DBO's determinism, lock-discipline and clock-ordering invariants,
// exiting 1 when there are findings and 2 when the tree cannot be
// loaded.
//
// By default the module is type-checked (stdlib go/types — no external
// tooling) and the analyzers run with resolved types and a static call
// graph: lockheld chases calls made under a lock through the call graph
// to transitive blocking operations, clockcmp/walltime match by type
// identity instead of name heuristics, and the type-aware-only rules
// (atomicmix, errdrop, sendliveness) come alive. Packages that fail to
// compile degrade per-file to the syntactic rules; `-mode=syntactic`
// forces that everywhere.
//
// Rules: walltime, lockheld, clockcmp, goexit, naketime, errdrop,
// sendliveness, atomicmix — `dbo-vet -rules` describes them. A
// deliberate exception is annotated in place with
// `//dbo:vet-ignore <rule> <reason>` (strictly line-scoped); unused or
// malformed directives are findings themselves.
//
// Usage:
//
//	go run ./cmd/dbo-vet ./...
//	go run ./cmd/dbo-vet -format=sarif ./... > dbo-vet.sarif
//	go run ./cmd/dbo-vet -mode=syntactic ./internal/core
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"dbo/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	describe := flag.Bool("rules", false, "describe the analyzer rules and exit")
	format := flag.String("format", "text", "output format: text, json, or sarif")
	mode := flag.String("mode", "typed", "analysis mode: typed (type-aware + call graph) or syntactic")
	depth := flag.Int("depth", 0, "lockheld call-graph depth bound (0 = default)")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel package analyses")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dbo-vet [-rules] [-format=text|json|sarif] [-mode=typed|syntactic] [-depth=N] [packages]\n\npackages default to ./... (the whole module)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *describe {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		for _, a := range analysis.AllModule() {
			fmt.Printf("%-12s %s (module-level, type-aware mode only)\n", a.Name, a.Doc)
		}
		return 0
	}

	root, err := analysis.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbo-vet:", err)
		return 2
	}

	cfg := analysis.Default()
	cfg.LockHeldDepth = *depth

	var diags []analysis.Diagnostic
	switch *mode {
	case "typed":
		mod, err := analysis.LoadModuleTyped(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbo-vet:", err)
			return 2
		}
		diags = mod.Run(cfg, flag.Args(), *workers)
	case "syntactic":
		pkgs, err := analysis.LoadModule(root, flag.Args())
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbo-vet:", err)
			return 2
		}
		for _, pkg := range pkgs {
			diags = append(diags, analysis.RunPackage(pkg, cfg)...)
		}
		analysis.SortDiagnostics(diags)
	default:
		fmt.Fprintf(os.Stderr, "dbo-vet: unknown -mode %q (want typed or syntactic)\n", *mode)
		return 2
	}

	// Text output is rendered relative to the working directory so the
	// lines are clickable in an editor; json/sarif are rendered relative
	// to the module root so CI artifacts are machine-independent.
	var ferr error
	switch *format {
	case "text":
		base, _ := os.Getwd()
		ferr = analysis.FormatText(os.Stdout, diags, base)
	case "json":
		ferr = analysis.FormatJSON(os.Stdout, diags, root)
	case "sarif":
		ferr = analysis.FormatSARIF(os.Stdout, diags, root)
	default:
		fmt.Fprintf(os.Stderr, "dbo-vet: unknown -format %q (want text, json, or sarif)\n", *format)
		return 2
	}
	if ferr != nil {
		fmt.Fprintln(os.Stderr, "dbo-vet:", ferr)
		return 2
	}

	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dbo-vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
