// Command dbo-exchange runs a live central exchange server: market data
// generator, DBO ordering buffer, and matching engine over UDP.
//
// Start the participants first (cmd/dbo-mp) so their addresses are
// known, then:
//
//	dbo-exchange -listen 127.0.0.1:7000 -mps 1=127.0.0.1:7001,2=127.0.0.1:7002 \
//	             -tick 1ms -ticks 1000 -delta 500us -tau 500us
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"dbo"
	"dbo/internal/audit"
	"dbo/internal/flight"
	"dbo/internal/metrics"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7000", "UDP listen address")
	mps := flag.String("mps", "", "comma-separated id=host:port participant endpoints")
	tick := flag.Duration("tick", time.Millisecond, "market data interval")
	ticks := flag.Int("ticks", 1000, "number of data points to generate")
	delta := flag.Duration("delta", 500*time.Microsecond, "δ pacing gap")
	kappa := flag.Float64("kappa", 0.25, "κ batching gain")
	tau := flag.Duration("tau", 500*time.Microsecond, "τ heartbeat/maintenance period")
	straggler := flag.Duration("straggler", 0, "straggler RTT threshold (0 = off)")
	httpAddr := flag.String("http", "", "serve /metrics, /metrics/prom, /debug/flight and /debug/audit here")
	flightOut := flag.String("flight", "", "write the flight trace to this NDJSON file on exit")
	flightBuf := flag.Int("flight-buf", 0, "flight recorder ring capacity (0 = default)")
	pprofOn := flag.Bool("pprof", false, "also serve /debug/pprof/ and Go runtime gauges on -http")
	rttDir := flag.String("rtt-dir", "", "capture per-MP probe RTTs and write replayable CSV traces here on exit (implies probing at τ)")
	flag.Parse()

	var addrs []dbo.ParticipantAddr
	for _, part := range strings.Split(*mps, ",") {
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "bad -mps entry %q (want id=host:port)\n", part)
			os.Exit(2)
		}
		n, err := strconv.Atoi(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad participant id %q: %v\n", id, err)
			os.Exit(2)
		}
		addrs = append(addrs, dbo.ParticipantAddr{ID: dbo.ParticipantID(n), Addr: addr})
	}
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "no participants: pass -mps 1=host:port,...")
		os.Exit(2)
	}

	var rec *dbo.FlightRecorder
	if *flightOut != "" || *httpAddr != "" {
		rec = dbo.NewFlightRecorder(*flightBuf)
	}
	// The live fairness auditor watches every forwarded trade in-process
	// (δ-gap and atomicity are participant-side checks; see dbo-mp).
	auditor := audit.New(audit.Config{})
	cfg := dbo.ExchangeConfig{
		Listen:       *listen,
		TickInterval: *tick,
		Ticks:        *ticks,
		Delta:        *delta,
		Kappa:        *kappa,
		Tau:          *tau,
		StragglerRTT: *straggler,
		Flight:       rec,
		Auditor:      auditor,
	}
	if *rttDir != "" {
		cfg.CaptureRTT = *tau
	}
	ex, err := dbo.NewExchange(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	auditor.Register(ex.Metrics())
	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", ex.Metrics().Handler())
		mux.Handle("/metrics/prom", ex.Metrics().PromHandler())
		mux.Handle("/debug/flight", flight.Handler(rec))
		mux.Handle("/debug/audit", audit.Handler(auditor))
		if *pprofOn {
			metrics.MountPprof(mux)
			metrics.RegisterRuntime(ex.Metrics())
		}
		go func() {
			if err := http.ListenAndServe(*httpAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "http:", err)
			}
		}()
		fmt.Printf("serving /metrics, /debug/flight and /debug/audit on %s\n", *httpAddr)
	}
	fmt.Printf("CES listening on %s (udp) / %s (tcp reverse path), %d participants, %d ticks every %v\n",
		ex.Addr(), ex.TCPAddr(), len(addrs), *ticks, *tick)
	if err := ex.Start(addrs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer ex.Stop()

	// Run until data generation plus a drain period has elapsed, then
	// report.
	total := time.Duration(*ticks)**tick + time.Second
	time.Sleep(total)
	trades := ex.Forwarded()
	fmt.Printf("forwarded %d trades to the matching engine, %d executions\n",
		len(trades), ex.Executions())
	perMP := map[dbo.ParticipantID]int{}
	for _, t := range trades {
		perMP[t.MP]++
	}
	for _, a := range addrs {
		fmt.Printf("  MP %d: %d trades\n", a.ID, perMP[a.ID])
	}
	if *flightOut != "" {
		f, err := os.Create(*flightOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		events := rec.Snapshot()
		if err := flight.Write(f, events); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("flight: %d events to %s (%d dropped)\n", len(events), *flightOut, rec.Dropped())
	}
	if *rttDir != "" {
		if err := os.MkdirAll(*rttDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, a := range addrs {
			tr := ex.RTTTrace(a.ID)
			if tr == nil {
				continue // no valid probe replies from this MP
			}
			path := filepath.Join(*rttDir, fmt.Sprintf("rtt-mp%d.csv", a.ID))
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := tr.WriteCSV(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("rtt: %d samples to %s (replay with dbo-sim -trace)\n", len(tr.RTT), path)
		}
	}
	s := auditor.Stats()
	fmt.Printf("audit: fairness %.4f over %d pairs (%d unfair)\n", s.Fairness, s.Pairs, s.UnfairPairs)
}
