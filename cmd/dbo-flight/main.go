// Command dbo-flight analyzes a flight-recorder NDJSON trace: it
// reconstructs per-trade lifecycle timelines, builds the hold-time
// attribution leaderboard (which participant's lagging watermark held
// everyone else up), and checks §4.1.2 pacing conformance.
//
//	dbo-sim -scheme dbo -ms 100 -flight trace.ndjson
//	dbo-flight trace.ndjson                 # full report
//	dbo-flight -timeline 3:17 trace.ndjson  # one trade's lifecycle
//	dbo-flight -blockers trace.ndjson       # attribution leaderboard
//	dbo-flight -pacing 20us trace.ndjson    # δ pacing check
//	dbo-flight -check trace.ndjson          # CI mode: exit 1 on anomalies
//
// Traces recorded on different nodes (each event stamped with its
// recording node) merge into one causally-ordered cross-node trace:
//
//	dbo-flight -merge merged.ndjson ces.ndjson mp1.ndjson mp2.ndjson
//	dbo-flight -timeline 3:17 merged.ndjson # + per-hop latency breakdown
//	dbo-flight -pacing 20us -check merged.ndjson
//
// On a merged trace, -check switches to the cross-node checks: δ-gap
// pacing recomputed from timestamps (catching an RB whose self-reported
// gaps lie), batch atomicity across participants, and reversed
// lifecycle incompleteness (a CES-side event whose node-side cause is
// missing — ring-drop evidence).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dbo/internal/flight"
	"dbo/internal/market"
	"dbo/internal/sim"
)

func main() {
	timeline := flag.String("timeline", "", "print one trade's lifecycle (MP:SEQ)")
	blockers := flag.Bool("blockers", false, "print only the blocker leaderboard")
	pacing := flag.Duration("pacing", 0, "check inter-batch delivery gaps against this δ")
	check := flag.Bool("check", false, "CI mode: exit non-zero unless the trace is sane and every held release is attributed")
	merge := flag.String("merge", "", "merge per-node traces into this file ('-' for stdout): -merge out.ndjson node1.ndjson node2.ndjson ...")
	top := flag.Int("top", 10, "rows to show in leaderboards")
	flag.Parse()

	if *merge != "" {
		if err := mergeTraces(*merge, flag.Args()); err != nil {
			fatal(err)
		}
		return
	}

	events, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	switch {
	case *timeline != "":
		mp, seq, err := parseKey(*timeline)
		if err != nil {
			fatal(err)
		}
		tl, ok := flight.Lookup(events, mp, seq)
		if !ok {
			fatal(fmt.Errorf("trade %d:%d not in trace", mp, seq))
		}
		printTimeline(tl)
		if flight.IsMerged(events) {
			if ha, ok := flight.AttributeHops(events, mp, seq); ok {
				printHops(ha)
			}
		}
	case *blockers:
		printBlockers(flight.Blockers(events), *top)
	case *pacing > 0 && !*check:
		p := flight.CheckPacing(events, sim.FromDuration(*pacing))
		fmt.Printf("deliveries  %d\n", p.Deliveries)
		fmt.Printf("min gap     %v (δ = %v)\n", p.MinGap, sim.FromDuration(*pacing))
		if len(p.Violations) == 0 {
			fmt.Println("pacing      OK: no inter-batch gap below δ")
			return
		}
		fmt.Printf("pacing      %d VIOLATIONS\n", len(p.Violations))
		for i, v := range p.Violations {
			if i >= *top {
				fmt.Printf("  ... and %d more\n", len(p.Violations)-i)
				break
			}
			fmt.Printf("  MP %d batch %d at %v: gap %v\n", v.MP, v.Batch, v.At, v.Gap)
		}
		os.Exit(1)
	case *check:
		if flight.IsMerged(events) {
			if err := checkMerged(events, sim.FromDuration(*pacing)); err != nil {
				fatal(err)
			}
			fmt.Println("merged trace OK")
			return
		}
		if err := checkTrace(events); err != nil {
			fatal(err)
		}
		if *pacing > 0 {
			if p := flight.CheckPacing(events, sim.FromDuration(*pacing)); len(p.Violations) > 0 {
				fatal(fmt.Errorf("check: %d pacing violations (min gap %v < δ %v)",
					len(p.Violations), p.MinGap, sim.FromDuration(*pacing)))
			}
		}
		fmt.Println("flight trace OK")
	default:
		report(events, *top)
	}
}

// load reads a trace from a file, or stdin when path is "" or "-".
func load(path string) ([]flight.Event, error) {
	var r io.Reader = os.Stdin
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return flight.Read(r)
}

func parseKey(s string) (market.ParticipantID, market.TradeSeq, error) {
	mps, seqs, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("bad -timeline %q (want MP:SEQ)", s)
	}
	mp, err1 := strconv.ParseInt(mps, 10, 64)
	seq, err2 := strconv.ParseUint(seqs, 10, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("bad -timeline %q (want MP:SEQ)", s)
	}
	return market.ParticipantID(mp), market.TradeSeq(seq), nil
}

func printTimeline(tl flight.Timeline) {
	fmt.Printf("trade MP %d seq %d  dc=⟨%d,%v⟩\n", tl.MP, tl.Seq, tl.DC.Point, tl.DC.Elapsed)
	stage := func(name string, at sim.Time) {
		if at == flight.TimeUnset {
			fmt.Printf("  %-10s -\n", name)
			return
		}
		fmt.Printf("  %-10s %v\n", name, at)
	}
	stage("submitted", tl.Submitted)
	stage("enqueued", tl.Enqueued)
	stage("released", tl.Released)
	stage("matched", tl.Matched)
	if tl.Hold > 0 {
		fmt.Printf("  held %v waiting on participant %d\n", tl.Hold, tl.Blocker)
	} else if tl.Released != flight.TimeUnset {
		fmt.Println("  released immediately (no watermark wait)")
	}
	if tl.FinalPos >= 0 {
		fmt.Printf("  final position %d\n", tl.FinalPos)
	}
}

func printBlockers(stats []flight.BlockerStat, top int) {
	if len(stats) == 0 {
		fmt.Println("no held releases: nothing to attribute")
		return
	}
	fmt.Printf("%-10s %8s %14s %14s\n", "blocker", "trades", "total hold", "max hold")
	for i, st := range stats {
		if i >= top {
			fmt.Printf("  ... and %d more\n", len(stats)-i)
			break
		}
		who := fmt.Sprintf("MP %d", st.Blocker)
		if st.Blocker < 0 {
			who = fmt.Sprintf("shard %d", -st.Blocker)
		}
		fmt.Printf("%-10s %8d %14v %14v\n", who, st.Trades, st.Total, st.Max)
	}
}

func report(events []flight.Event, top int) {
	s := flight.Summarize(events)
	fmt.Printf("events      %d\n", s.Events)
	for k := flight.KindGen; k <= flight.KindGate; k++ {
		if n, ok := s.ByKind[k]; ok {
			fmt.Printf("  %-10s %d\n", k, n)
		}
	}
	fmt.Printf("releases    %d (%d held by the watermark gate)\n", s.Releases, s.Held)
	if s.Held > 0 {
		fmt.Printf("hold        p50 %v  p99 %v  max %v\n", s.HoldP50, s.HoldP99, s.HoldMax)
	}
	if n := flight.UnattributedHeld(events); n > 0 {
		fmt.Printf("WARNING: %d held releases carry no blocker attribution\n", n)
	}
	fmt.Println()
	printBlockers(flight.Blockers(events), top)
}

// checkTrace is the CI gate: a seeded smoke run must produce a trace
// with lifecycle coverage and a blocker attributed to every held
// release.
func checkTrace(events []flight.Event) error {
	if len(events) == 0 {
		return fmt.Errorf("check: empty trace")
	}
	s := flight.Summarize(events)
	for _, k := range []flight.Kind{flight.KindGen, flight.KindDeliver, flight.KindSubmit, flight.KindEnqueue, flight.KindRelease} {
		if s.ByKind[k] == 0 {
			return fmt.Errorf("check: no %v events in trace", k)
		}
	}
	if s.Held == 0 {
		return fmt.Errorf("check: no held releases (workload too idle to exercise attribution)")
	}
	if n := flight.UnattributedHeld(events); n > 0 {
		return fmt.Errorf("check: %d held releases have no blocker attribution", n)
	}
	tls := flight.Timelines(events)
	incomplete := 0
	for _, tl := range tls {
		if tl.Enqueued != flight.TimeUnset && tl.Released == flight.TimeUnset {
			incomplete++
		}
	}
	fmt.Printf("check: %d events, %d trades, %d held releases all attributed, %d still queued at capture end\n",
		s.Events, len(tls), s.Held, incomplete)
	return nil
}

// mergeTraces joins per-node trace files into one causally-ordered
// trace, reporting the clock alignment on stderr so stdout stays clean
// when writing to "-".
func mergeTraces(out string, inputs []string) error {
	if len(inputs) < 2 {
		return fmt.Errorf("merge: need at least two per-node traces, got %d", len(inputs))
	}
	perNode := make([][]flight.Event, 0, len(inputs))
	for _, path := range inputs {
		events, err := load(path)
		if err != nil {
			return fmt.Errorf("merge: %s: %w", path, err)
		}
		perNode = append(perNode, events)
	}
	merged, rep, err := flight.Merge(perNode)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := flight.Write(w, merged); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "merged %d events from %d nodes (ref node %d)\n", rep.Events, len(rep.Nodes), rep.Ref)
	for _, n := range rep.Nodes {
		if n == rep.Ref {
			continue
		}
		fmt.Fprintf(os.Stderr, "  node %d: offset %v (%d fwd / %d rev edges)\n",
			n, rep.Offset[n], rep.FwdEdges[n], rep.RevEdges[n])
	}
	return nil
}

// checkMerged is the CI gate for cross-node traces: timestamp-derived
// δ-gap pacing (when δ is given), batch atomicity, and lifecycle
// completeness with ring-drop evidence treated as an error.
func checkMerged(events []flight.Event, delta sim.Time) error {
	if delta > 0 {
		p := flight.CheckCrossPacing(events, delta)
		if len(p.Violations) > 0 {
			v := p.Violations[0]
			return fmt.Errorf("check: %d cross-node pacing violations (first: MP %d batch %d gap %v < δ %v)",
				len(p.Violations), v.MP, v.Batch, v.Gap, delta)
		}
	}
	if breaks := flight.CheckBatchAtomicity(events); len(breaks) > 0 {
		b := breaks[0]
		return fmt.Errorf("check: %d batch-atomicity breaks (first: batch %d, MP %d saw last=%d count=%d vs last=%d count=%d)",
			len(breaks), b.Batch, b.MP, b.Point, b.Count, b.RefPoint, b.RefCount)
	}
	cs := flight.CheckCrossLifecycle(events)
	if cs.EnqueueNoSubmit > 0 || cs.MatchNoRelease > 0 || cs.DeliverNoSeal > 0 {
		return fmt.Errorf("check: reversed incompleteness — %d enqueues without submit, %d matches without release, %d deliveries of unsealed batches: recorder ring drops or a missing per-node file",
			cs.EnqueueNoSubmit, cs.MatchNoRelease, cs.DeliverNoSeal)
	}
	fmt.Printf("check: %d events, %d trades (%d cross-node complete)\n", len(events), cs.Trades, cs.Complete)
	return nil
}

func printHops(ha flight.HopAttribution) {
	fmt.Printf("per-hop attribution (trigger %d, batch %d):\n", ha.Trigger, ha.Batch)
	stage := func(name string, d sim.Time) {
		if d == flight.TimeUnset {
			fmt.Printf("  %-22s -\n", name)
			return
		}
		fmt.Printf("  %-22s %v\n", name, d)
	}
	stage("seal -> deliver", ha.SealToDeliver)
	stage("deliver -> submit", ha.DeliverToSubmit)
	stage("submit -> enqueue", ha.SubmitToEnqueue)
	stage("enqueue -> release", ha.EnqueueToRelease)
	stage("release -> match", ha.ReleaseToMatch)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
