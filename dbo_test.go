package dbo_test

import (
	"testing"
	"time"

	"dbo"
)

func TestSimulateFacade(t *testing.T) {
	r := dbo.Simulate(dbo.SimConfig{
		Scheme:   dbo.DBO,
		Seed:     1,
		N:        3,
		Duration: 20 * dbo.Millisecond,
		Warmup:   2 * dbo.Millisecond,
		Drain:    20 * dbo.Millisecond,
	})
	if r.Fairness != 1 {
		t.Fatalf("fairness = %v", r.Fairness)
	}
	if r.Trades == 0 {
		t.Fatal("no trades")
	}
}

func TestTraceFacade(t *testing.T) {
	if dbo.CloudTrace(1).Summarize().Mean <= dbo.LabTrace(1).Summarize().Mean {
		t.Fatal("cloud trace should be slower than lab trace")
	}
}

func TestDeliveryClockFacade(t *testing.T) {
	a := dbo.DeliveryClock{Point: 1, Elapsed: 5}
	b := dbo.DeliveryClock{Point: 1, Elapsed: 6}
	if !a.Less(b) {
		t.Fatal("Less broken through facade")
	}
}

func TestLiveFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("live test needs real time")
	}
	ex, err := dbo.NewExchange(dbo.ExchangeConfig{
		Listen:       "127.0.0.1:0",
		TickInterval: 10 * time.Millisecond,
		Ticks:        5,
		Delta:        2 * time.Millisecond,
		Tau:          time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := dbo.NewParticipant(dbo.ParticipantConfig{
		ID:     1,
		Listen: "127.0.0.1:0",
		CES:    ex.Addr().String(),
		Delta:  2 * time.Millisecond,
		Tau:    time.Millisecond,
		Strategy: func(dp dbo.DataPoint) (bool, time.Duration, dbo.Side, int64, int64) {
			return true, time.Millisecond, dbo.Buy, dp.Price, 1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mp.Stop()
	if err := ex.Start([]dbo.ParticipantAddr{{ID: 1, Addr: mp.Addr().String()}}); err != nil {
		t.Fatal(err)
	}
	defer ex.Stop()
	deadline := time.Now().Add(10 * time.Second)
	for len(ex.Forwarded()) < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("forwarded %d of 5", len(ex.Forwarded()))
		}
		time.Sleep(5 * time.Millisecond)
	}
}
