module dbo

go 1.23
